#include "coupled/coupled.h"

#include <atomic>
#include <cmath>
#include <complex>
#include <functional>
#include <limits>
#include <optional>
#include <string_view>
#include <thread>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/serialize.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/trace.h"
#include "coupled/planner.h"
#include "coupled/sweep.h"
#include "fembem/fingerprint.h"
#include "dense/dense_solver.h"
#include "hmat/hmatrix.h"
#include "sparsedirect/multifrontal.h"

namespace cs::coupled {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kBaselineCoupling: return "baseline-coupling";
    case Strategy::kAdvancedCoupling: return "advanced-coupling";
    case Strategy::kMultiSolve: return "multi-solve";
    case Strategy::kMultiSolveCompressed: return "multi-solve-compressed";
    case Strategy::kMultiFactorization: return "multi-factorization";
    case Strategy::kMultiFactorizationCompressed:
      return "multi-factorization-compressed";
    case Strategy::kMultiSolveRandomized:
      return "multi-solve-randomized";
  }
  return "?";
}

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kDouble: return "double";
    case Precision::kSingle: return "single";
  }
  return "?";
}

std::string validate_config(const Config& c) {
  // Blocking parameters are validated for every strategy (the resilient
  // driver may halve/double them, and a nonsensical value should fail fast
  // rather than survive until a strategy switch), but only the strategies
  // that consume them impose cross-field constraints:
  //   * n_c drives the multi-solve family and the slab width of the
  //     advanced coupling's A_ss materialization;
  //   * n_S only matters for kMultiSolveCompressed (panel = max(n_S, n_c));
  //   * n_b only matters for the multi-factorization pair;
  //   * kMultiSolveRandomized ignores n_c/n_S/n_b entirely — its blocking
  //     is the adaptive sample size (rand_initial_rank, doubled until the
  //     posterior probe passes, capped at rand_max_rank_ratio * n_BEM).
  if (c.n_c < 1) return "n_c must be >= 1";
  if (c.n_S < 1) return "n_S must be >= 1";
  if (c.n_b < 1) return "n_b must be >= 1";
  if (c.strategy == Strategy::kMultiSolveCompressed && c.n_S < c.n_c)
    return "n_S must be >= n_c for the compressed multi-solve";
  if (!(c.eps > 0)) return "eps must be > 0";
  if (!(c.eta > 0)) return "eta must be > 0";
  if (c.hmat_leaf < 2) return "hmat_leaf must be >= 2";
  if (c.rand_initial_rank < 1) return "rand_initial_rank must be >= 1";
  if (!(c.rand_max_rank_ratio > 0) || c.rand_max_rank_ratio > 1)
    return "rand_max_rank_ratio must be in (0, 1]";
  if (c.refine_iterations < 0) return "refine_iterations must be >= 0";
  if (c.refine_tolerance < 0) return "refine_tolerance must be >= 0";
  // Mixed precision relies on the double-precision refinement sweeps to
  // recover the ~1e-6 accuracy of the single-precision factors; without
  // them the solve would silently return single-precision answers.
  if (c.factor_precision == Precision::kSingle && c.refine_iterations == 0)
    return "factor_precision=single requires refine_iterations >= 1 "
           "(double-precision iterative refinement recovers the accuracy "
           "lost to single-precision factors)";
  if (c.num_threads < 0) return "num_threads must be >= 0";
  if (c.max_recovery_attempts < 0)
    return "max_recovery_attempts must be >= 0";
  if (c.out_of_core) {
    // Probe the spill directory now: an unusable ooc_dir must reject the
    // config up front (a daemon fails at startup), not surface as an
    // "ooc.open" IoError minutes into the factorization at first spill.
    // The "ooc_dir: " prefix lets config_error() classify this as kIo.
    if (c.ooc_dir.empty())
      return "ooc_dir: must be non-empty when out_of_core is on";
    const std::string reason = probe_writable_dir(c.ooc_dir);
    if (!reason.empty()) return "ooc_dir: '" + c.ooc_dir + "' " + reason;
  }
  return FailpointRegistry::check(c.failpoints);
}

namespace {

/// Map a validate_config complaint to a structured error: filesystem
/// problems (the "ooc_dir: " prefix) are kIo at site "ooc.dir" so callers
/// and the recovery ladder see the same taxonomy as a spill-time failure;
/// everything else is a plain kInternal config error.
SolveError config_error(const std::string& problem) {
  constexpr const char* kDirPrefix = "ooc_dir: ";
  if (problem.rfind(kDirPrefix, 0) == 0)
    return SolveError{ErrorCode::kIo, "ooc.dir",
                      problem.substr(std::string(kDirPrefix).size())};
  return SolveError{ErrorCode::kInternal, "config", problem};
}

}  // namespace

namespace detail {

/// Everything FactoredCoupled keeps alive between solves. The strategy
/// runners fill this in as they finish: the interior multifrontal factors,
/// exactly one of the dense / H-matrix Schur factorizations, the surface
/// cluster tree (whose permutation maps caller <-> tree coordinates) and
/// the coupling block in tree row order.
template <class T>
struct FactoredImpl {
  /// Factor-storage scalar of the mixed-precision path.
  using F = single_of_t<T>;

  const fembem::CoupledSystem<T>* sys = nullptr;  ///< borrowed; outlives us
  Config cfg;         ///< effective config after degrade-and-retry
  SolveStats fstats;  ///< factorization-run stats (nrhs == 0)
  bool ok = false;

  /// Shared (not owned exclusively) when a sweep's SweepContext handed
  /// out its cached tree: the handle must survive the context and vice
  /// versa, and a const tree is safely shared between both.
  std::shared_ptr<const hmat::ClusterTree> tree;
  sparse::Csr<T> A_sv_tree;  ///< coupling rows permuted to tree order

  /// Exactly one precision bank holds the factors: the input-precision
  /// members when `single` is false, the single-precision (`F`) members
  /// when the strategy ran with Config::factor_precision == kSingle. The
  /// solve wrappers below convert each right-hand-side block to factor
  /// precision around the triangular solves, so solve_batch (and its
  /// double-precision refinement operators) is precision-agnostic.
  bool single = false;
  sparsedirect::MultifrontalSolver<T> interior;
  dense::DenseSolver<T> schur_dense;
  std::optional<hmat::HMatrix<T>> schur_h;
  sparsedirect::MultifrontalSolver<F> interior_f;
  dense::DenseSolver<F> schur_dense_f;
  std::optional<hmat::HMatrix<F>> schur_h_f;

  /// In-place interior solve A_vv X = B through whichever precision bank
  /// holds the factors.
  void interior_solve(la::MatrixView<T> B) const {
    if (single) {
      la::Matrix<F> W = la::converted<F>(la::ConstMatrixView<T>(B));
      interior_f.solve(W.view());
      la::convert_into<T, F>(la::ConstMatrixView<F>(W.view()), B);
    } else {
      interior.solve(B);
    }
  }

  /// In-place S X = B in tree coordinates, through whichever Schur
  /// factorization the strategy kept.
  void schur_solve(la::MatrixView<T> B) const {
    if (single) {
      la::Matrix<F> W = la::converted<F>(la::ConstMatrixView<T>(B));
      if (schur_h_f) {
        schur_h_f->solve(W.view());
      } else {
        schur_dense_f.solve(W.view());
      }
      la::convert_into<T, F>(la::ConstMatrixView<F>(W.view()), B);
    } else if (schur_h) {
      schur_h->solve(B);
    } else {
      schur_dense.solve(B);
    }
  }

  /// Drop whatever a failed attempt may have left behind. Strategy
  /// runners only store factors after everything succeeded, but a retry
  /// must never see state from a previous attempt.
  void reset_factors() {
    ok = false;
    tree.reset();
    A_sv_tree = sparse::Csr<T>();
    single = false;
    interior = sparsedirect::MultifrontalSolver<T>();
    schur_dense = dense::DenseSolver<T>();
    schur_h.reset();
    interior_f = sparsedirect::MultifrontalSolver<F>();
    schur_dense_f = dense::DenseSolver<F>();
    schur_h_f.reset();
  }
};

}  // namespace detail

namespace {

using fembem::CoupledSystem;
using hmat::ClusterTree;
using hmat::HMatrix;
using hmat::HOptions;
using la::Matrix;
using la::MatrixView;
using sparsedirect::MultifrontalSolver;
using sparsedirect::SolverOptions;

/// One pipeline/algorithm stage: a dotted entry in SolveStats::stages plus
/// a trace span of the same name, so the structured report and the visual
/// timeline always agree on the stage taxonomy.
class StageScope {
 public:
  StageScope(PhaseTimes& stages, const char* name)
      : phase_(stages, name), span_("stage", name) {}

  TraceSpan& span() { return span_; }

 private:
  ScopedPhase phase_;
  TraceSpan span_;
};

/// Kernel generator re-indexed to surface cluster-tree coordinates.
template <class T>
class PermutedGenerator final : public hmat::MatrixGenerator<T> {
 public:
  PermutedGenerator(const hmat::MatrixGenerator<T>& base,
                    const std::vector<index_t>& original_of_tree)
      : base_(base), orig_(original_of_tree) {}
  index_t rows() const override { return base_.rows(); }
  index_t cols() const override { return base_.cols(); }
  T entry(index_t i, index_t j) const override {
    return base_.entry(orig_[static_cast<std::size_t>(i)],
                       orig_[static_cast<std::size_t>(j)]);
  }

 private:
  const hmat::MatrixGenerator<T>& base_;
  const std::vector<index_t>& orig_;
};

/// Numerical-method fallbacks applied by the degrade-and-retry driver
/// that have no Config field of their own: once a method breaks down the
/// retry runs with the corresponding flag cleared.
struct Degrade {
  bool sparse_ldlt_ok = true;  ///< false: factor sparse blocks with LU
  bool dense_ldlt_ok = true;   ///< false: factor the dense Schur with LU
};

/// Shared context of one factorization attempt, parameterized on the input
/// scalar T and the factor-storage scalar ST (== T for a full-precision
/// run, single_of_t<T> for a mixed-precision one). The ST-typed operator
/// views below feed the strategy runners, which do all their numeric work
/// — sparse factorization, Schur assembly/panels, H-matrix compression,
/// dense factorization — in ST; the T-typed A_sv_tree is what moves into
/// FactoredImpl for the (always input-precision) solution and refinement
/// phase. The strategy runner fills `out` with the factors it produced;
/// run_strategy moves the shared pieces (cluster tree, tree-ordered
/// coupling block) in afterwards.
template <class T, class ST>
struct Run {
  static constexpr bool kMixed = !std::is_same_v<ST, T>;

  const CoupledSystem<T>& sys;
  const Config& cfg;
  const Degrade& deg;
  SolveStats& stats;
  detail::FactoredImpl<T>& out;
  SweepContext* sweep;         // cross-frequency reuse (may be null)
  // Surface dof clustering; shared with the SweepContext when sweeping
  // (declared after `sweep` so the ctor init list can consult it).
  std::shared_ptr<const ClusterTree> tree;
  sparse::Csr<T> A_sv_tree;    // coupling rows in tree order (input scalar)

  // Factor-precision operator views. When ST == T these point straight at
  // the system / A_sv_tree; in mixed mode they own converted copies (the
  // sparse blocks are small against the factors they produce).
  sparse::Csr<ST> A_vv_store, A_sv_store;
  const sparse::Csr<ST>* A_vv_st = nullptr;
  const sparse::Csr<ST>* A_sv_st = nullptr;
  std::optional<hmat::CastGenerator<ST, T>> cast_ss;
  PermutedGenerator<ST> gen_tree;

  Run(const CoupledSystem<T>& s, const Config& c, const Degrade& d,
      SolveStats& st, detail::FactoredImpl<T>& o, SweepContext* sw)
      : sys(s),
        cfg(c),
        deg(d),
        stats(st),
        out(o),
        sweep(sw),
        tree(sw ? sw->acquire_tree(s.surface_points(), c.hmat_leaf)
                : std::make_shared<const ClusterTree>(s.surface_points(),
                                                      c.hmat_leaf)),
        cast_ss(make_cast(s)),
        gen_tree(base_gen(s, cast_ss), tree->original_of_tree()) {
    // Permute the coupling rows once.
    MemoryScope scope(MemTag::kCouplingBlock);
    const auto& perm = tree->tree_of_original();
    sparse::Triplets<T> trip(sys.ns(), sys.nv());
    for (index_t r = 0; r < sys.A_sv.rows(); ++r)
      for (offset_t k = sys.A_sv.row_begin(r); k < sys.A_sv.row_end(r); ++k)
        trip.add(perm[static_cast<std::size_t>(r)], sys.A_sv.col(k),
                 sys.A_sv.value(k));
    A_sv_tree = sparse::Csr<T>::from_triplets(trip);
    if constexpr (kMixed) {
      MemoryScope cast_scope(MemTag::kSparseMatrix);
      A_vv_store = sys.A_vv.template converted<ST>();
      {
        MemoryScope sv_scope(MemTag::kCouplingBlock);
        A_sv_store = A_sv_tree.template converted<ST>();
      }
      A_vv_st = &A_vv_store;
      A_sv_st = &A_sv_store;
    } else {
      A_vv_st = &sys.A_vv;
      A_sv_st = &A_sv_tree;
    }
  }

  /// The factor-precision A_ss generator (compressed assembly reads it).
  const hmat::MatrixGenerator<ST>& gen_ss() const {
    return base_gen(sys, cast_ss);
  }

  /// Store the finished factors in the matching precision bank of `out`.
  void store(MultifrontalSolver<ST>&& mf, dense::DenseSolver<ST>&& ds) const {
    if constexpr (kMixed) {
      out.single = true;
      out.interior_f = std::move(mf);
      out.schur_dense_f = std::move(ds);
    } else {
      out.interior = std::move(mf);
      out.schur_dense = std::move(ds);
    }
  }
  void store(MultifrontalSolver<ST>&& mf,
             std::optional<HMatrix<ST>>&& h) const {
    if constexpr (kMixed) {
      out.single = true;
      out.interior_f = std::move(mf);
      out.schur_h_f = std::move(h);
    } else {
      out.interior = std::move(mf);
      out.schur_h = std::move(h);
    }
  }

  SolverOptions sparse_options(bool symmetric, index_t schur_size) const {
    SolverOptions so;
    so.symmetric = symmetric && deg.sparse_ldlt_ok;
    so.schur_size = schur_size;
    so.compress = cfg.sparse_compression;
    so.blr_eps = cfg.eps;
    so.ordering = cfg.ordering;
    so.parallel_fronts = cfg.parallel_fronts;
    so.out_of_core = cfg.out_of_core;
    so.ooc_dir = cfg.ooc_dir;
    return so;
  }

  /// Sparse factorization with the failure classified at the site: an
  /// unpivoted-LDLT zero pivot is a recoverable kNumericalBreakdown (the
  /// driver retries with LU); an LU zero pivot means the matrix really is
  /// singular. When sweeping, `sweep_key` names this block's symbolic
  /// analysis in the SweepContext: a stored analysis that still matches
  /// the matrix/options (pattern identity is guaranteed by the shifted
  /// family; factorize_with re-validates anyway) replaces the analysis
  /// phase, and a cold factorization exports its analysis for the next
  /// frequency. A validation mismatch — e.g. a degraded retry that
  /// flipped LDLT to LU — silently falls back to cold analysis.
  void factorize_sparse(MultifrontalSolver<ST>& mf, const sparse::Csr<ST>& A,
                        bool symmetric, index_t schur_size,
                        const char* sweep_key = nullptr) const {
    const SolverOptions so = sparse_options(symmetric, schur_size);
    try {
      bool reused = false;
      if (sweep && sweep_key) {
        if (const auto* a = sweep->find_analysis(sweep_key)) {
          try {
            mf.factorize_with(A, so, *a);
            reused = true;
          } catch (const std::invalid_argument&) {
            // stale analysis (reshaped problem): re-analyze below
          }
        }
      }
      if (!reused) {
        mf.factorize(A, so);
        if (sweep && sweep_key)
          sweep->store_analysis(sweep_key, mf.export_analysis());
      }
    } catch (const la::SingularMatrix& e) {
      throw ClassifiedError(so.symmetric ? ErrorCode::kNumericalBreakdown
                                         : ErrorCode::kSingular,
                            "mf.front_factor", e.what());
    }
  }

  HOptions h_options() const {
    HOptions ho;
    ho.eps = cfg.eps;
    ho.eta = cfg.eta;
    return ho;
  }

  /// Assemble the compressed Schur base S_0 = A_ss (tree order), reusing
  /// the sweep's recorded block skeleton and per-leaf rank hints when one
  /// is available. The skeleton is scalar-independent, so a
  /// precision-escalated retry keeps reusing it.
  HMatrix<ST> assemble_schur_base() const {
    if (sweep)
      return HMatrix<ST>::assemble(*tree, *tree, gen_ss(), h_options(),
                                   sweep->skeleton("schur"));
    return HMatrix<ST>::assemble(*tree, *tree, gen_ss(), h_options());
  }

 private:
  static std::optional<hmat::CastGenerator<ST, T>> make_cast(
      const CoupledSystem<T>& s) {
    if constexpr (kMixed) {
      return std::optional<hmat::CastGenerator<ST, T>>(std::in_place,
                                                       *s.A_ss);
    } else {
      return std::nullopt;
    }
  }
  static const hmat::MatrixGenerator<ST>& base_gen(
      const CoupledSystem<T>& s,
      const std::optional<hmat::CastGenerator<ST, T>>& cast) {
    if constexpr (kMixed) {
      return *cast;
    } else {
      return *s.A_ss;
    }
  }
};

/// Frequency-lagged mode for solve_batch (FactoredCoupled::solve_lagged):
/// the factors belong to a *neighboring* operator of the same family, and
/// iterative refinement against `residual_sys` — the operator actually
/// being solved — is what turns the lagged direct solve into an exact
/// answer. Refinement is mandatory and *strict*: a stall or running out of
/// sweeps above tolerance throws at site "refine.stall" regardless of
/// factor precision, because the caller has a better option (factorize the
/// target afresh).
template <class T>
struct BatchOverride {
  const CoupledSystem<T>* residual_sys = nullptr;
  int refine_iterations = 0;
  double refine_tolerance = 0;
};

/// Common solution sequence (paper eq. (7)), generalized to an nrhs-column
/// block: forms the reduced right-hand side, solves the Schur system,
/// back-substitutes and optionally refines — all on blocks. On entry
/// B_v/B_s hold right-hand-side columns in caller coordinates; on return
/// they hold the solution. Every kernel involved (spmm, spmm_trans,
/// generator_multiply, the triangular block solves) accumulates each
/// column independently in a fixed scan order, so column j of the result
/// is bitwise identical to a single-column solve of that column, at any
/// thread count.
template <class T>
void solve_batch(const detail::FactoredImpl<T>& f, MatrixView<T> B_v,
                 MatrixView<T> B_s, SolveStats& stats,
                 const BatchOverride<T>* ov = nullptr) {
  const CoupledSystem<T>& sys = ov ? *ov->residual_sys : *f.sys;
  const index_t nv = sys.nv();
  const index_t ns = sys.ns();
  const index_t nrhs = B_v.cols();
  ScopedPhase phase(stats.phases, "solution");
  TraceSpan span("phase", "solution");
  span.arg("nrhs", static_cast<long long>(nrhs));
  // Everything the solution phase allocates (reduced RHS, residuals,
  // refinement corrections, solve transients) is RHS workspace.
  MemoryScope mem_scope(MemTag::kRhsWorkspace);

  const auto& perm = f.tree->tree_of_original();
  const auto& orig = f.tree->original_of_tree();

  const int refine_its =
      ov ? ov->refine_iterations : f.cfg.refine_iterations;
  const double refine_tol =
      ov ? ov->refine_tolerance : f.cfg.refine_tolerance;
  const bool strict = ov != nullptr;  // lagged mode: must reach tolerance

  // Refinement re-applies the exact operator against the original
  // right-hand side after B_v/B_s have been overwritten with the solution.
  Matrix<T> Bv0, Bs0;
  if (refine_its > 0) {
    Bv0 = Matrix<T>(nv, nrhs);
    Bs0 = Matrix<T>(ns, nrhs);
    Bv0.view().copy_from(la::ConstMatrixView<T>(B_v));
    Bs0.view().copy_from(la::ConstMatrixView<T>(B_s));
  }

  {
    // y_v = A_vv^{-1} B_v.
    Matrix<T> yv(nv, nrhs);
    {
      StageScope stage(stats.stages, "solution.interior_solve");
      stage.span().arg("nrhs", static_cast<long long>(nrhs));
      yv.view().copy_from(la::ConstMatrixView<T>(B_v));
      f.interior_solve(yv.view());
    }

    // T = B_s - A_sv Y_v (tree order).
    Matrix<T> t(ns, nrhs);
    for (index_t j = 0; j < nrhs; ++j)
      for (index_t i = 0; i < ns; ++i)
        t(perm[static_cast<std::size_t>(i)], j) = B_s(i, j);
    f.A_sv_tree.spmm(T{-1}, la::ConstMatrixView<T>(yv.view()), T{1},
                     t.view());

    // X_s = S^{-1} T.
    {
      StageScope stage(stats.stages, "solution.schur_solve");
      stage.span().arg("nrhs", static_cast<long long>(nrhs));
      f.schur_solve(t.view());
    }

    // X_v = A_vv^{-1} (B_v - A_sv^T X_s).
    Matrix<T> rv(nv, nrhs);
    {
      StageScope stage(stats.stages, "solution.interior_solve");
      stage.span().arg("nrhs", static_cast<long long>(nrhs));
      rv.view().copy_from(la::ConstMatrixView<T>(B_v));
      f.A_sv_tree.spmm_trans(T{-1}, la::ConstMatrixView<T>(t.view()), T{1},
                             rv.view());
      f.interior_solve(rv.view());
    }

    // Scatter the solution into the caller's views; the direct-solve
    // transients (yv, t, rv) are released before refinement allocates its
    // own blocks (see planner.h solve_batch_bytes).
    for (index_t j = 0; j < nrhs; ++j) {
      for (index_t i = 0; i < nv; ++i) B_v(i, j) = rv(i, j);
      for (index_t p = 0; p < ns; ++p)
        B_s(orig[static_cast<std::size_t>(p)], j) = t(p, j);
    }
  }

  // Optional iterative refinement against the *exact* coupled operator
  // (the dense block applied through its kernel generator): recovers the
  // accuracy lost to aggressive compression — including the ~1e-6 error
  // floor of single-precision factors. Runs on the whole block.
  stats.refine_residuals.clear();
  stats.refine_sweeps = 0;
  // Stall detection for the mixed-precision path: when cond(A)*eps_single
  // is too large the float-factor correction stops contracting the
  // residual well above the target. Escalating to double factors is the
  // recovery, so a plateau (or a non-finite residual) is thrown as a
  // recoverable numerical breakdown at site "refine.stall".
  double prev_worst = std::numeric_limits<double>::infinity();
  const double stall_floor = std::max(refine_tol, 1e-9);
  bool converged = false;
  for (int it = 0; it < refine_its; ++it) {
    StageScope stage(stats.stages, "solution.refine");
    stage.span()
        .arg("sweep", static_cast<long long>(it))
        .arg("nrhs", static_cast<long long>(nrhs));
    Metrics::instance().add(Metric::kRefineSweeps, 1);

    // Residuals in caller coordinates: R_v = B_v0 - A_vv X_v - A_sv^T X_s,
    // R_s = B_s0 - A_sv X_v - A_ss X_s.
    Matrix<T> Rv(nv, nrhs), Rs(ns, nrhs);
    Rv.view().copy_from(la::ConstMatrixView<T>(Bv0.view()));
    sys.A_vv.spmm(T{-1}, la::ConstMatrixView<T>(B_v), T{1}, Rv.view());
    sys.A_sv.spmm_trans(T{-1}, la::ConstMatrixView<T>(B_s), T{1}, Rv.view());
    fembem::generator_multiply(*sys.A_ss, la::ConstMatrixView<T>(B_s),
                               Rs.view());
    for (index_t j = 0; j < nrhs; ++j)
      for (index_t i = 0; i < ns; ++i) Rs(i, j) = Bs0(i, j) - Rs(i, j);
    sys.A_sv.spmm(T{-1}, la::ConstMatrixView<T>(B_v), T{1}, Rs.view());

    // Per-column convergence accounting: the relative coupled residual of
    // the iterate entering this sweep; the last sweep's values are what
    // SolveStats::refine_residuals reports.
    stats.refine_residuals.assign(static_cast<std::size_t>(nrhs), 0.0);
    for (index_t j = 0; j < nrhs; ++j) {
      double rr = 0, bb = 0;
      for (index_t i = 0; i < nv; ++i) {
        rr += std::norm(Rv(i, j));
        bb += std::norm(Bv0(i, j));
      }
      for (index_t i = 0; i < ns; ++i) {
        rr += std::norm(Rs(i, j));
        bb += std::norm(Bs0(i, j));
      }
      stats.refine_residuals[static_cast<std::size_t>(j)] =
          std::sqrt(rr) / std::sqrt(std::max(1e-300, bb));
    }
    double worst = 0;
    for (double r : stats.refine_residuals) worst = std::max(worst, r);

    // Converged: every column meets the requested tolerance, skip the
    // remaining sweeps (refine_tolerance == 0 keeps the historical
    // fixed-sweep behavior).
    if (refine_tol > 0 && worst <= refine_tol) {
      converged = true;
      break;
    }

    // Stalled: non-finite residual, or — past the first correction — a
    // contraction factor below 2x while still above the accuracy the
    // factors should support. The mixed-precision path throws (the
    // recovery is to re-factorize in double), and so does the strict
    // lagged mode (the recovery is to factorize the target operator
    // afresh); a full-precision plateau on matching factors has no better
    // factorization to escalate to. The failpoint forces the stall
    // deterministically for the resilience tests.
    // The contraction bar differs by mode: mixed precision demands 2x per
    // sweep (a float-factor plateau sits far above tolerance and double
    // factors are one retry away), but frequency-lagged factors contract
    // at ~||A(w)^-1 (A(w') - A(w))||, legitimately slow for wider
    // frequency steps — only near-stagnation proves they cannot deliver.
    const double contraction_bar = strict && !f.single ? 0.9 : 0.5;
    bool stalled = !std::isfinite(worst);
    if ((f.single || strict) && it >= 2 && worst > stall_floor &&
        worst > contraction_bar * prev_worst)
      stalled = true;
    if (failpoint("refine.stall")) stalled = true;
    if (stalled && (f.single || strict)) {
      Metrics::instance().add(Metric::kRefineStalls, 1);
      throw ClassifiedError(
          ErrorCode::kNumericalBreakdown, "refine.stall",
          "iterative refinement stalled at relative residual " +
              std::to_string(worst) +
              (strict ? " with frequency-lagged factors"
                      : " with single-precision factors"));
    }
    prev_worst = worst;

    // Corrections through the same factorizations.
    Matrix<T> dy(nv, nrhs);
    dy.view().copy_from(la::ConstMatrixView<T>(Rv.view()));
    f.interior_solve(dy.view());
    Matrix<T> dt(ns, nrhs);
    for (index_t j = 0; j < nrhs; ++j)
      for (index_t i = 0; i < ns; ++i)
        dt(perm[static_cast<std::size_t>(i)], j) = Rs(i, j);
    f.A_sv_tree.spmm(T{-1}, la::ConstMatrixView<T>(dy.view()), T{1},
                     dt.view());
    f.schur_solve(dt.view());
    Matrix<T> dv(nv, nrhs);
    dv.view().copy_from(la::ConstMatrixView<T>(Rv.view()));
    f.A_sv_tree.spmm_trans(T{-1}, la::ConstMatrixView<T>(dt.view()), T{1},
                           dv.view());
    f.interior_solve(dv.view());

    for (index_t j = 0; j < nrhs; ++j) {
      for (index_t i = 0; i < nv; ++i) B_v(i, j) += dv(i, j);
      for (index_t p = 0; p < ns; ++p)
        B_s(orig[static_cast<std::size_t>(p)], j) += dt(p, j);
    }
    stats.refine_sweeps = it + 1;
  }
  // Strict mode must *demonstrate* convergence: the loop ending with
  // corrections still pending above tolerance means the lagged factors
  // cannot deliver the requested accuracy at this frequency.
  if (strict && !converged) {
    Metrics::instance().add(Metric::kRefineStalls, 1);
    throw ClassifiedError(
        ErrorCode::kNumericalBreakdown, "refine.stall",
        "frequency-lagged refinement did not reach tolerance " +
            std::to_string(refine_tol) + " within " +
            std::to_string(refine_its) + " sweeps");
  }
}

/// Factor the compressed Schur H-matrix: H-LU by default, symmetric
/// H-LDL^T (the paper's HMAT mode) when requested and applicable. A pivot
/// breakdown in the unpivoted H-LDL^T is recoverable (the driver clears
/// hmat_symmetric_ldlt and retries with H-LU); one in H-LU is not.
template <class T, class ST>
void factor_schur_h(HMatrix<ST>& S, const Run<T, ST>& run) {
  const bool ldlt = run.cfg.hmat_symmetric_ldlt && run.sys.symmetric;
  try {
    if (ldlt) {
      S.ldlt_factorize();
    } else {
      S.lu_factorize();
    }
  } catch (const la::SingularMatrix& e) {
    throw ClassifiedError(
        ldlt ? ErrorCode::kNumericalBreakdown : ErrorCode::kSingular,
        ldlt ? "hldlt.pivot" : "hlu.pivot", e.what());
  }
}

/// Factor the dense Schur accumulator, classifying a zero pivot: blocked
/// LDL^T breakdown falls back to LU on retry; an LU breakdown is final.
template <class T, class ST>
void factor_schur_dense(dense::DenseSolver<ST>& ds, Matrix<ST>&& S,
                        const Run<T, ST>& run) {
  const bool ldlt = run.sys.symmetric && run.deg.dense_ldlt_ok;
  try {
    ds.factorize(std::move(S), ldlt);
  } catch (const la::SingularMatrix& e) {
    throw ClassifiedError(
        ldlt ? ErrorCode::kNumericalBreakdown : ErrorCode::kSingular,
        "dense.factor", e.what());
  }
}

// ---------------------------------------------------------------------------
// Baseline coupling (II-E) and multi-solve (Alg. 1 / Alg. 2)
// ---------------------------------------------------------------------------

/// blocked = false reproduces the baseline coupling (one sparse solve with
/// all n_BEM right-hand sides at once); blocked = true is multi-solve.
template <class T, class ST>
void run_multisolve(Run<T, ST>& run, bool blocked, bool compressed) {
  const auto& cfg = run.cfg;
  auto& stats = run.stats;
  const index_t nv = run.sys.nv();
  const index_t ns = run.sys.ns();

  MultifrontalSolver<ST> mf;
  {
    ScopedPhase phase(stats.phases, "sparse_factorization");
    TraceSpan span("phase", "sparse_factorization");
    run.factorize_sparse(mf, *run.A_vv_st, true, 0, "vv");
  }
  stats.sparse_factor_bytes = mf.factor_bytes();

  if (!compressed) {
    // Dense Schur accumulation (MUMPS/SPIDO-style coupling).
    Matrix<ST> S = [&] {
      MemoryScope scope(MemTag::kSchurDense);
      return Matrix<ST>(ns, ns);
    }();
    {
      ScopedPhase phase(stats.phases, "schur");
      TraceSpan span("phase", "schur");
      const index_t step = blocked ? cfg.n_c : ns;
      for (index_t c0 = 0; c0 < ns; c0 += step) {
        const index_t nc = std::min(step, ns - c0);
        if (failpoint("alloc.panel"))
          throw BudgetExceeded(
              static_cast<std::size_t>(nv) * static_cast<std::size_t>(nc) *
                  sizeof(ST),
              MemoryTracker::instance().current(),
              MemoryTracker::instance().budget());
        // Y_i = A_vv^{-1} A_sv(i)^T, retrieved dense (the API limitation).
        MemoryScope scope(MemTag::kSchurPanel);
        Matrix<ST> Y(nv, nc);
        {
          StageScope stage(stats.stages, "schur.panel_solve");
          stage.span()
              .arg("c0", static_cast<long long>(c0))
              .arg("ncols", static_cast<long long>(nc));
          run.A_sv_st->rows_as_dense_transposed(c0, nc, Y.view());
          mf.solve(Y.view());
        }
        StageScope stage(stats.stages, "schur.assemble");
        auto slab = S.block(0, c0, ns, nc);
        fembem::generator_block(run.gen_tree, 0, c0, slab);  // A_ss block
        run.A_sv_st->spmm(ST{-1}, Y.view(), ST{1}, slab);    // - A_sv Y_i
      }
    }
    stats.schur_bytes = S.size_bytes();
    stats.schur_compression_ratio = 1.0;
    dense::DenseSolver<ST> ds;
    {
      ScopedPhase phase(stats.phases, "dense_factorization");
      TraceSpan span("phase", "dense_factorization");
      factor_schur_dense(ds, std::move(S), run);
    }
    run.store(std::move(mf), std::move(ds));
  } else {
    // Compressed Schur (MUMPS/HMAT-style): A_ss assembled directly in
    // compressed form; dense Z panels folded in with compressed AXPYs.
    std::optional<HMatrix<ST>> S_store;
    {
      ScopedPhase phase(stats.phases, "schur");
      TraceSpan span("phase", "schur");
      {
        StageScope stage(stats.stages, "schur.assemble");
        S_store = run.assemble_schur_base();
      }
      HMatrix<ST>& S = *S_store;
      const index_t panel = std::max(cfg.n_S, cfg.n_c);

      auto produce_panel = [&](index_t c0) {
        // Scope installed here so the producer thread tags its panels too.
        MemoryScope scope(MemTag::kSchurPanel);
        const index_t np = std::min(panel, ns - c0);
        if (failpoint("alloc.panel"))
          throw BudgetExceeded(
              static_cast<std::size_t>(ns) * static_cast<std::size_t>(np) *
                  sizeof(ST),
              MemoryTracker::instance().current(),
              MemoryTracker::instance().budget());
        Matrix<ST> Z(ns, np);
        for (index_t cc = 0; cc < np; cc += cfg.n_c) {
          const index_t nc = std::min(cfg.n_c, np - cc);
          Matrix<ST> Y(nv, nc);
          {
            StageScope stage(stats.stages, "schur.panel_solve");
            stage.span()
                .arg("c0", static_cast<long long>(c0 + cc))
                .arg("ncols", static_cast<long long>(nc));
            run.A_sv_st->rows_as_dense_transposed(c0 + cc, nc, Y.view());
            mf.solve(Y.view());
          }
          StageScope stage(stats.stages, "schur.spmm");
          run.A_sv_st->spmm(ST{1}, Y.view(), ST{0}, Z.block(0, cc, ns, nc));
        }
        Metrics::instance().add(Metric::kPanelsProduced, 1);
        return Z;
      };

      auto fold_panel = [&](index_t c0, Matrix<ST>& Z) {
        StageScope stage(stats.stages, "schur.axpy");
        stage.span()
            .arg("c0", static_cast<long long>(c0))
            .arg("ncols", static_cast<long long>(Z.cols()));
        S.add_dense_block(ST{-1}, Z.view(), 0, c0);  // compressed AXPY
        Metrics::instance().add(Metric::kPanelsFolded, 1);
      };

      // Pipeline: the sparse solves + SpMM of panel i+1 (producer thread)
      // overlap the compressed AXPY of panel i (this thread). The number
      // of panels concurrently alive is capped by the planner's per-panel
      // footprint estimate against the budget headroom, so the virtual
      // budget holds; near the budget the cap degrades to 1 and the loop
      // below runs exactly like the serial algorithm. Panels are folded in
      // ascending c0 order either way, so the recompression sequence --
      // and hence the result -- is identical to a serial run.
      const int inflight = admissible_inflight(
          multisolve_panel_bytes(nv, ns, cfg, sizeof(ST)), cfg.memory_budget,
          MemoryTracker::instance().current(), 3);
      if (resolve_threads(cfg.num_threads) <= 1 || inflight <= 1 ||
          ns <= panel) {
        if (inflight <= 1 && resolve_threads(cfg.num_threads) > 1 &&
            ns > panel) {
          // The planner degraded the pipeline to the serial algorithm.
          Metrics::instance().add(Metric::kAdmissionDegraded, 1);
          trace_instant("admission", "pipeline.degraded_serial");
        }
        for (index_t c0 = 0; c0 < ns; c0 += panel) {
          Matrix<ST> Z = produce_panel(c0);
          fold_panel(c0, Z);
        }
      } else {
        struct Panel {
          index_t c0;
          Matrix<ST> Z;
        };
        // Live panels = queued + one in production + one being folded.
        BoundedQueue<Panel> queue(
            static_cast<std::size_t>(std::max(1, inflight - 2)));
        std::exception_ptr producer_error = nullptr;
        std::thread producer([&] {
          trace_thread_name("schur.producer");
          try {
            for (index_t c0 = 0; c0 < ns; c0 += panel) {
              Panel p{c0, produce_panel(c0)};
              trace_gauge_add("panels.inflight", 1);
              Timer stall;
              bool pushed;
              {
                StageScope stage(stats.stages, "schur.stall_producer");
                pushed = queue.push(std::move(p));
              }
              Metrics::instance().add(Metric::kPipelineProducerStallSec,
                                      stall.seconds());
              if (!pushed) return;  // consumer cancelled
            }
          } catch (...) {
            producer_error = std::current_exception();
          }
          queue.close();
        });
        try {
          while (true) {
            Timer stall;
            std::optional<Panel> p;
            {
              StageScope stage(stats.stages, "schur.stall_consumer");
              p = queue.pop();
            }
            Metrics::instance().add(Metric::kPipelineConsumerStallSec,
                                    stall.seconds());
            if (!p) break;
            trace_gauge_add("panels.inflight", -1);
            fold_panel(p->c0, p->Z);
          }
        } catch (...) {
          queue.cancel();
          producer.join();
          throw;
        }
        producer.join();
        if (producer_error) std::rethrow_exception(producer_error);
      }
    }
    HMatrix<ST>& S = *S_store;
    stats.schur_bytes = S.memory_bytes();
    stats.schur_compression_ratio = S.compression_ratio();
    {
      ScopedPhase phase(stats.phases, "dense_factorization");
      TraceSpan span("phase", "dense_factorization");
      factor_schur_h(S, run);
    }
    stats.schur_bytes = std::max(stats.schur_bytes, S.memory_bytes());
    run.store(std::move(mf), std::move(S_store));
  }
}

// ---------------------------------------------------------------------------
// Randomized compressed Schur (the paper's future-work extension): the
// correction M = A_sv A_vv^{-1} A_sv^T is captured directly as low-rank
// factors by an adaptive two-pass randomized range finder (M is symmetric
// because A_vv is, so M ~ Q (M Q)^T), then folded into the H-matrix A_ss.
// Worthwhile when M's global spectrum decays fast; the ablation bench
// measures where it wins/loses against the blocked algorithms.
// ---------------------------------------------------------------------------

template <class T, class ST>
void run_multisolve_randomized(Run<T, ST>& run) {
  const auto& cfg = run.cfg;
  auto& stats = run.stats;
  const index_t nv = run.sys.nv();
  const index_t ns = run.sys.ns();

  MultifrontalSolver<ST> mf;
  {
    ScopedPhase phase(stats.phases, "sparse_factorization");
    TraceSpan span("phase", "sparse_factorization");
    run.factorize_sparse(mf, *run.A_vv_st, true, 0, "vv");
  }
  stats.sparse_factor_bytes = mf.factor_bytes();

  // out := M * G by two sparse products around a multi-RHS solve.
  auto apply_m = [&](la::ConstMatrixView<ST> G, la::MatrixView<ST> out) {
    MemoryScope scope(MemTag::kSchurPanel);
    Matrix<ST> Y(nv, G.cols());
    run.A_sv_st->spmm_trans(ST{1}, G, ST{0}, Y.view());
    mf.solve(Y.view());
    run.A_sv_st->spmm(ST{1}, la::ConstMatrixView<ST>(Y.view()), ST{0}, out);
  };

  std::optional<HMatrix<ST>> S_store;
  {
    ScopedPhase phase(stats.phases, "schur");
    TraceSpan span("phase", "schur");
    {
      StageScope stage(stats.stages, "schur.assemble");
      S_store = run.assemble_schur_base();
    }
    HMatrix<ST>& S = *S_store;

    Rng rng(20220512);
    auto gaussian = [&](index_t rows, index_t cols) {
      MemoryScope scope(MemTag::kSchurPanel);
      Matrix<ST> G(rows, cols);
      for (index_t j = 0; j < cols; ++j)
        for (index_t i = 0; i < rows; ++i)
          G(i, j) = ST(rng.normal());
      return G;
    };

    // The sketch block, range basis and probe workspace of the randomized
    // range finder are all Schur-feeding panels.
    MemoryScope rand_scope(MemTag::kSchurPanel);
    const index_t cap = std::max<index_t>(
        1, std::min<index_t>(
               ns, static_cast<index_t>(cfg.rand_max_rank_ratio * ns)));
    index_t r = std::min<index_t>(cap, cfg.rand_initial_rank);
    Matrix<ST> W(ns, 0);
    Matrix<ST> Q;
    while (true) {
      // Extend the sample block to r columns.
      const index_t have = W.cols();
      Matrix<ST> W_new(ns, r);
      if (have > 0)
        W_new.block(0, 0, ns, have).copy_from(
            la::ConstMatrixView<ST>(W.view()));
      {
        auto G = gaussian(ns, r - have);
        apply_m(la::ConstMatrixView<ST>(G.view()),
                W_new.block(0, have, ns, r - have));
      }
      W = std::move(W_new);
      // Orthonormal range basis.
      Matrix<ST> QR = W;
      std::vector<ST> tau;
      la::householder_qr(QR.view(), tau);
      Q = la::form_q_thin(la::ConstMatrixView<ST>(QR.view()), tau);
      // Posterior accuracy probe: || (I - Q Q^T') M z || / || M z ||.
      const index_t n_probe = 4;
      auto Z = gaussian(ns, n_probe);
      Matrix<ST> P(ns, n_probe);
      apply_m(la::ConstMatrixView<ST>(Z.view()), P.view());
      Matrix<ST> C(r, n_probe);
      // C = Q^H P (unitary basis: conjugated inner products).
      for (index_t j = 0; j < n_probe; ++j)
        for (index_t c = 0; c < r; ++c) {
          ST acc{};
          for (index_t i = 0; i < ns; ++i) acc += conj_if(Q(i, c)) * P(i, j);
          C(c, j) = acc;
        }
      Matrix<ST> R = P;
      la::gemm(ST{-1}, la::ConstMatrixView<ST>(Q.view()), la::Op::kNoTrans,
               la::ConstMatrixView<ST>(C.view()), la::Op::kNoTrans, ST{1},
               R.view());
      const double rel =
          la::norm_fro(la::ConstMatrixView<ST>(R.view())) /
          std::max(1e-300, double(la::norm_fro(la::ConstMatrixView<ST>(
                               P.view()))));
      if (rel <= cfg.eps || r >= cap) break;
      r = std::min<index_t>(cap, 2 * r);
    }
    stats.randomized_rank = Q.cols();

    // Second pass. With the library's plain-transpose Rk convention and M
    // complex symmetric (M^T = M), the projected approximation
    // M ~ Q Q^H M factors as U V^T with U = Q and V = M conj(Q):
    //   Q (M conj(Q))^T = Q conj(Q)^T M^T = (Q Q^H) M.
    Matrix<ST> Qc(ns, Q.cols());
    for (index_t j = 0; j < Q.cols(); ++j)
      for (index_t i = 0; i < ns; ++i) Qc(i, j) = conj_if(Q(i, j));
    la::RkFactors<ST> correction;
    correction.V = Matrix<ST>(ns, Q.cols());
    apply_m(la::ConstMatrixView<ST>(Qc.view()), correction.V.view());
    correction.U = std::move(Q);
    // S -= M (compressed, directly from factors).
    S.add_low_rank(ST{-1}, correction);
  }
  HMatrix<ST>& S = *S_store;
  stats.schur_bytes = S.memory_bytes();
  stats.schur_compression_ratio = S.compression_ratio();
  {
    ScopedPhase phase(stats.phases, "dense_factorization");
    TraceSpan span("phase", "dense_factorization");
    factor_schur_h(S, run);
  }
  run.store(std::move(mf), std::move(S_store));
}

// ---------------------------------------------------------------------------
// Advanced coupling (II-F): one sparse factorization+Schur call
// ---------------------------------------------------------------------------

template <class T, class ST>
void run_advanced(Run<T, ST>& run) {
  const auto& cfg = run.cfg;
  auto& stats = run.stats;
  const index_t nv = run.sys.nv();
  const index_t ns = run.sys.ns();

  // K = [[A_vv, A_sv^T],[A_sv, 0]], symmetric, Schur on the trailing ns.
  MultifrontalSolver<ST> mf;
  {
    ScopedPhase phase(stats.phases, "sparse_factorization");
    TraceSpan span("phase", "sparse_factorization");
    sparse::Triplets<ST> trip(nv + ns, nv + ns);
    const auto& A = *run.A_vv_st;
    for (index_t r = 0; r < nv; ++r)
      for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k)
        trip.add(r, A.col(k), A.value(k));
    const auto& C = *run.A_sv_st;
    for (index_t r = 0; r < ns; ++r)
      for (offset_t k = C.row_begin(r); k < C.row_end(r); ++k) {
        trip.add(nv + r, C.col(k), C.value(k));
        trip.add(C.col(k), nv + r, C.value(k));
      }
    MemoryScope scope(MemTag::kSparseMatrix);
    auto K = sparse::Csr<ST>::from_triplets(trip);
    run.factorize_sparse(mf, K, true, ns, "K");
  }
  stats.sparse_factor_bytes = mf.factor_bytes();

  // The Schur complement arrives as one non-compressed dense matrix.
  Matrix<ST> S = mf.take_schur();  // = -A_sv A_vv^{-1} A_sv^T (tree order)
  {
    ScopedPhase phase(stats.phases, "schur");
    TraceSpan span("phase", "schur");
    StageScope stage(stats.stages, "schur.assemble");
    // S += A_ss, materialized in column slabs through generator_block
    // (amortizes kernel evaluation the same way the baseline branch does).
    const index_t slab = std::max<index_t>(1, cfg.n_c);
    MemoryScope scope(MemTag::kSchurPanel);
    Matrix<ST> G(ns, std::min(slab, ns));
    for (index_t c0 = 0; c0 < ns; c0 += slab) {
      const index_t nc = std::min(slab, ns - c0);
      auto Gb = G.block(0, 0, ns, nc);
      fembem::generator_block(run.gen_tree, 0, c0, Gb);
      la::axpy(ST{1}, Gb, S.block(0, c0, ns, nc));
    }
  }
  stats.schur_bytes = S.size_bytes();
  dense::DenseSolver<ST> ds;
  {
    ScopedPhase phase(stats.phases, "dense_factorization");
    TraceSpan span("phase", "dense_factorization");
    factor_schur_dense(ds, std::move(S), run);
  }
  // The factorization of K = [[A_vv, A_sv^T],[A_sv, 0]] with a Schur
  // feature on the trailing ns also serves as the interior solver: a solve
  // with an nv-row block runs through the A_vv subsystem only.
  run.store(std::move(mf), std::move(ds));
}

// ---------------------------------------------------------------------------
// Multi-factorization (Alg. 3, plus the compressed-Schur variant)
// ---------------------------------------------------------------------------

template <class T, class ST>
void run_multifacto(Run<T, ST>& run, bool compressed) {
  const auto& cfg = run.cfg;
  auto& stats = run.stats;
  const index_t nv = run.sys.nv();
  const index_t ns = run.sys.ns();
  const index_t nb = std::max<index_t>(1, cfg.n_b);

  // Balanced block boundaries over the surface dofs.
  std::vector<index_t> start(static_cast<std::size_t>(nb) + 1);
  for (index_t k = 0; k <= nb; ++k)
    start[static_cast<std::size_t>(k)] =
        static_cast<index_t>(static_cast<offset_t>(k) * ns / nb);

  // Schur accumulator: dense, or the compressed A_ss H-matrix.
  Matrix<ST> S_dense;
  std::optional<HMatrix<ST>> S_h;
  if (compressed) {
    ScopedPhase phase(stats.phases, "schur");
    StageScope stage(stats.stages, "schur.assemble");
    S_h = run.assemble_schur_base();
  } else {
    MemoryScope scope(MemTag::kSchurDense);
    S_dense = Matrix<ST>(ns, ns);
  }

  struct Job {
    index_t bi, bj;
  };
  std::vector<Job> jobs;
  for (index_t bi = 0; bi < nb; ++bi)
    for (index_t bj = 0; bj < nb; ++bj) jobs.push_back(Job{bi, bj});

  // One (bi, bj) W-factorization; `mf` receives the factors.
  auto factor_job = [&](const Job& job, MultifrontalSolver<ST>& mf) {
    const index_t r0 = start[static_cast<std::size_t>(job.bi)];
    const index_t nri = start[static_cast<std::size_t>(job.bi) + 1] - r0;
    const index_t c0 = start[static_cast<std::size_t>(job.bj)];
    const index_t ncj = start[static_cast<std::size_t>(job.bj) + 1] - c0;
    // W = [[A_vv, A_sv(j)^T],[A_sv(i), 0]]; unsymmetric (duplicated
    // storage + LU), padded square when the edge blocks differ in size.
    const index_t p = std::max(nri, ncj);
    ScopedPhase phase(stats.phases, "sparse_factorization");
    StageScope stage(stats.stages, "multifacto.factor");
    stage.span()
        .arg("bi", static_cast<long long>(job.bi))
        .arg("bj", static_cast<long long>(job.bj))
        .arg("schur_size", static_cast<long long>(p));
    Metrics::instance().add(Metric::kMultifactoJobs, 1);
    if (failpoint("mf.job"))
      throw BudgetExceeded(
          static_cast<std::size_t>(p) * static_cast<std::size_t>(p) *
              sizeof(ST),
          MemoryTracker::instance().current(),
          MemoryTracker::instance().budget());
    sparse::Triplets<ST> trip(nv + p, nv + p);
    const auto& A = *run.A_vv_st;
    for (index_t r = 0; r < nv; ++r)
      for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k)
        trip.add(r, A.col(k), A.value(k));
    const auto& C = *run.A_sv_st;
    for (index_t r = 0; r < nri; ++r)
      for (offset_t k = C.row_begin(r0 + r); k < C.row_end(r0 + r); ++k)
        trip.add(nv + r, C.col(k), C.value(k));
    for (index_t q = 0; q < ncj; ++q)
      for (offset_t k = C.row_begin(c0 + q); k < C.row_end(c0 + q); ++k)
        trip.add(C.col(k), nv + q, C.value(k));
    MemoryScope scope(MemTag::kSparseMatrix);
    auto W = sparse::Csr<ST>::from_triplets(trip);
    // Superfluous re-factorization of A_vv on every call: the API
    // limitation that gives the algorithm its name. In a sweep each
    // (bi, bj) block at least reuses its own symbolic analysis across
    // frequencies (a changed n_b reshapes W and fails validation — cold).
    const std::string wkey =
        "W:" + std::to_string(job.bi) + ":" + std::to_string(job.bj);
    run.factorize_sparse(mf, W, false, p, wkey.c_str());
  };

  MultifrontalSolver<ST> mf_last;  // the last diagonal factorization serves
                                   // the interior solves of the finish phase

  // Fold one retrieved Schur block into the accumulator. Commits happen
  // strictly in the serial (bi, bj) order, so the recompression sequence
  // of the compressed accumulator -- and hence the result -- is identical
  // to a serial run.
  auto commit_job = [&](const Job& job, Matrix<ST>& X,
                        MultifrontalSolver<ST>& mf) {
    const index_t r0 = start[static_cast<std::size_t>(job.bi)];
    const index_t nri = start[static_cast<std::size_t>(job.bi) + 1] - r0;
    const index_t c0 = start[static_cast<std::size_t>(job.bj)];
    const index_t ncj = start[static_cast<std::size_t>(job.bj) + 1] - c0;
    {
      ScopedPhase phase(stats.phases, "schur");
      StageScope stage(stats.stages, "multifacto.commit");
      stage.span()
          .arg("bi", static_cast<long long>(job.bi))
          .arg("bj", static_cast<long long>(job.bj));
      if (compressed) {
        S_h->add_dense_block(ST{1}, X.block(0, 0, nri, ncj), r0, c0);
      } else {
        auto slab = S_dense.block(r0, c0, nri, ncj);
        fembem::generator_block(run.gen_tree, r0, c0, slab);
        la::axpy(ST{1}, X.block(0, 0, nri, ncj), slab);
      }
    }
    X.clear();
    if (job.bi == nb - 1 && job.bj == nb - 1) {
      mf_last = std::move(mf);
      stats.sparse_factor_bytes = mf_last.factor_bytes();
    }
  };

  // Admission-controlled concurrency: the independent (bi, bj) jobs run in
  // parallel, each acquiring a slot sized by the planner's per-job
  // footprint before it allocates. Near the budget the worker count (and
  // the runtime admission) degrade to one job in flight -- the serial
  // algorithm -- instead of throwing.
  int workers = 1;
  std::size_t job_bytes = 0;
  if (resolve_threads(cfg.num_threads) > 1 && jobs.size() > 1) {
    PlannerInputs in = planner_inputs(run.sys, cfg);
    in.scalar_bytes = sizeof(ST);  // jobs allocate in factor precision
    job_bytes = multifacto_job_bytes(in, cfg);
    workers = admissible_inflight(
        job_bytes, cfg.memory_budget, MemoryTracker::instance().current(),
        std::min(resolve_threads(cfg.num_threads),
                 static_cast<int>(jobs.size())));
  }

  if (workers <= 1) {
    if (resolve_threads(cfg.num_threads) > 1 && jobs.size() > 1) {
      // The planner degraded the concurrent jobs to the serial algorithm.
      Metrics::instance().add(Metric::kAdmissionDegraded, 1);
      trace_instant("admission", "multifacto.degraded_serial");
    }
    for (const Job& job : jobs) {
      MultifrontalSolver<ST> mf;
      factor_job(job, mf);
      Matrix<ST> X = mf.take_schur();  // p x p
      commit_job(job, X, mf);
    }
  } else {
    AdmissionController admission(job_bytes, cfg.memory_budget);
    std::exception_ptr error = nullptr;
    std::atomic<bool> failed{false};
    const auto n_jobs = static_cast<std::ptrdiff_t>(jobs.size());
#pragma omp parallel for ordered schedule(dynamic, 1) num_threads(workers)
    for (std::ptrdiff_t k = 0; k < n_jobs; ++k) {
      bool admitted = false;
      {
        MultifrontalSolver<ST> mf;
        Matrix<ST> X;
        bool ok = false;
        if (!failed.load(std::memory_order_relaxed)) {
          admission.acquire();
          admitted = true;
          trace_gauge_add("jobs.inflight", 1);
          try {
            factor_job(jobs[static_cast<std::size_t>(k)], mf);
            X = mf.take_schur();
            ok = true;
          } catch (...) {
#pragma omp critical(cs_multifacto_error)
            {
              if (!failed.exchange(true)) error = std::current_exception();
            }
          }
        }
#pragma omp ordered
        {
          if (ok && !failed.load(std::memory_order_relaxed)) {
            try {
              commit_job(jobs[static_cast<std::size_t>(k)], X, mf);
            } catch (...) {
#pragma omp critical(cs_multifacto_error)
              {
                if (!failed.exchange(true)) error = std::current_exception();
              }
            }
          }
        }
      }  // job transients (factors, X) released before the slot
      if (admitted) {
        trace_gauge_add("jobs.inflight", -1);
        admission.release();
      }
    }
    if (error) std::rethrow_exception(error);
  }

  if (compressed) {
    stats.schur_bytes = S_h->memory_bytes();
    stats.schur_compression_ratio = S_h->compression_ratio();
    {
      ScopedPhase phase(stats.phases, "dense_factorization");
      TraceSpan span("phase", "dense_factorization");
      factor_schur_h(*S_h, run);
    }
    stats.schur_bytes = std::max(stats.schur_bytes, S_h->memory_bytes());
    run.store(std::move(mf_last), std::move(S_h));
  } else {
    stats.schur_bytes = S_dense.size_bytes();
    dense::DenseSolver<ST> ds;
    {
      ScopedPhase phase(stats.phases, "dense_factorization");
      TraceSpan span("phase", "dense_factorization");
      factor_schur_dense(ds, std::move(S_dense), run);
    }
    run.store(std::move(mf_last), std::move(ds));
  }
}

/// One factorization attempt with the effective (possibly degraded)
/// config, working in factor-storage scalar ST. On success `out` holds the
/// complete factorization.
template <class T, class ST>
void run_strategy_in(const CoupledSystem<T>& system, const Config& cfg,
                     const Degrade& deg, SolveStats& stats,
                     detail::FactoredImpl<T>& out, SweepContext* sweep) {
  Run<T, ST> run(system, cfg, deg, stats, out, sweep);
  switch (cfg.strategy) {
    case Strategy::kBaselineCoupling:
      run_multisolve(run, /*blocked=*/false, /*compressed=*/false);
      break;
    case Strategy::kMultiSolve:
      run_multisolve(run, /*blocked=*/true, /*compressed=*/false);
      break;
    case Strategy::kMultiSolveCompressed:
      run_multisolve(run, /*blocked=*/true, /*compressed=*/true);
      break;
    case Strategy::kAdvancedCoupling:
      run_advanced(run);
      break;
    case Strategy::kMultiFactorization:
      run_multifacto(run, /*compressed=*/false);
      break;
    case Strategy::kMultiFactorizationCompressed:
      run_multifacto(run, /*compressed=*/true);
      break;
    case Strategy::kMultiSolveRandomized:
      run_multisolve_randomized(run);
      break;
  }
  // The runner stored its solvers; move the shared pieces in with them.
  out.tree = std::move(run.tree);
  out.A_sv_tree = std::move(run.A_sv_tree);
}

/// Precision dispatch: a single-precision run instantiates the whole
/// strategy stack (multifrontal, H-matrix, dense solver, packed kernels)
/// at single_of_t<T> while the solution/refinement phase stays in T.
template <class T>
void run_strategy(const CoupledSystem<T>& system, const Config& cfg,
                  const Degrade& deg, SolveStats& stats,
                  detail::FactoredImpl<T>& out, SweepContext* sweep) {
  if (cfg.factor_precision == Precision::kSingle) {
    run_strategy_in<T, single_of_t<T>>(system, cfg, deg, stats, out, sweep);
  } else {
    run_strategy_in<T, T>(system, cfg, deg, stats, out, sweep);
  }
}

/// Map the in-flight exception onto the structured taxonomy. Call from a
/// catch block only.
SolveError classify_current_exception() {
  try {
    throw;
  } catch (const ClassifiedError& e) {
    return e.error();
  } catch (const BudgetExceeded& e) {
    return SolveError{ErrorCode::kBudget, "memory", e.what()};
  } catch (const la::SingularMatrix& e) {
    return SolveError{ErrorCode::kSingular, "factor", e.what()};
  } catch (const IoError& e) {
    return SolveError{ErrorCode::kIo, e.site(), e.what()};
  } catch (const std::exception& e) {
    return SolveError{ErrorCode::kInternal, "unexpected", e.what()};
  } catch (...) {
    return SolveError{ErrorCode::kInternal, "unexpected",
                      "unknown exception"};
  }
}

/// Human-readable failure line; keeps the historical "out of memory
/// budget" / "numerical failure" phrasing callers grep for.
std::string failure_text(const SolveError& err) {
  switch (err.code) {
    case ErrorCode::kBudget:
      return "out of memory budget: " + err.detail;
    case ErrorCode::kSingular:
      return "numerical failure: " + err.detail;
    case ErrorCode::kNumericalBreakdown:
      return "numerical breakdown (" + err.site + "): " + err.detail;
    case ErrorCode::kIo:
      return "I/O failure (" + err.site + "): " + err.detail;
    case ErrorCode::kInternal:
      return "internal error (" + err.site + "): " + err.detail;
    case ErrorCode::kNone:
      break;
  }
  return err.detail;
}

/// Pick one degradation for the failed attempt, mutating the effective
/// config / method flags in place. Returns a static action label, or
/// nullptr when no further degradation applies (the failure is final).
const char* plan_recovery(const SolveError& err, Config& cfg, Degrade& deg,
                          index_t ns) {
  switch (err.code) {
    case ErrorCode::kBudget: {
      // Budget ladder: shrink the transient footprint first (panel widths
      // down / block count up), then trade memory for disk.
      const bool panelled = cfg.strategy == Strategy::kMultiSolve ||
                            cfg.strategy == Strategy::kMultiSolveCompressed;
      if (panelled && cfg.n_c > 8) {
        cfg.n_c = std::max<index_t>(8, cfg.n_c / 2);
        cfg.n_S = std::max<index_t>(cfg.n_c, cfg.n_S / 2);
        return "halve_panels";
      }
      const bool blocked =
          cfg.strategy == Strategy::kMultiFactorization ||
          cfg.strategy == Strategy::kMultiFactorizationCompressed;
      if (blocked && cfg.n_b < ns) {
        cfg.n_b = std::min<index_t>(ns, cfg.n_b * 2);
        return "double_blocks";
      }
      if (!cfg.out_of_core) {
        cfg.out_of_core = true;
        return "enable_ooc";
      }
      return nullptr;
    }
    case ErrorCode::kNumericalBreakdown: {
      // Stalled mixed-precision refinement: the float factors cannot
      // contract the residual (cond(A) * eps_single too large). Escalate
      // to double-precision factors and re-run the whole attempt.
      if (err.site == "refine.stall" &&
          cfg.factor_precision == Precision::kSingle) {
        cfg.factor_precision = Precision::kDouble;
        return "precision_escalate";
      }
      // An unpivoted LDL^T hit a zero pivot; the pivoted LU of the same
      // block may still succeed.
      if (err.site == "hldlt.pivot" && cfg.hmat_symmetric_ldlt) {
        cfg.hmat_symmetric_ldlt = false;
        return "hldlt_to_hlu";
      }
      if (err.site == "mf.front_factor" && deg.sparse_ldlt_ok) {
        deg.sparse_ldlt_ok = false;
        return "sparse_ldlt_to_lu";
      }
      if (err.site == "dense.factor" && deg.dense_ldlt_ok) {
        deg.dense_ldlt_ok = false;
        return "dense_ldlt_to_lu";
      }
      return nullptr;
    }
    case ErrorCode::kIo:
      // A persistent spill-store failure escaped the in-place retries:
      // run in core.
      if (cfg.out_of_core) {
        cfg.out_of_core = false;
        return "disable_ooc";
      }
      return nullptr;
    case ErrorCode::kSingular:
    case ErrorCode::kInternal:
    case ErrorCode::kNone:
      return nullptr;  // genuinely singular / unexpected: final
  }
  return nullptr;
}

/// Degrade-and-retry driver shared by solve_coupled and factorize_coupled:
/// one attempt = factorization (run_strategy) plus the caller-supplied
/// `after` step (the solution phase for solve_coupled, nothing for
/// factorize_coupled). A failure in either part is classified, fed through
/// plan_recovery and retried with the degraded config — exactly the
/// historical whole-run retry semantics. The effective config ends up in
/// impl.cfg.
template <class T>
void run_attempts(const CoupledSystem<T>& system, const Config& config,
                  detail::FactoredImpl<T>& impl, SolveStats& stats,
                  const std::function<void(detail::FactoredImpl<T>&)>& after,
                  SweepContext* sweep = nullptr) {
  Config eff = config;
  Degrade deg;
  const int max_attempts =
      1 + (config.auto_recover ? std::max(0, config.max_recovery_attempts)
                               : 0);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    stats.attempts = attempt;
    stats.factor_precision = eff.factor_precision;
    impl.reset_factors();
    impl.cfg = eff;
    try {
      run_strategy(system, eff, deg, stats, impl, sweep);
      impl.ok = true;
      if (after) after(impl);
      stats.success = true;
      stats.error = SolveError{};
      stats.failure.clear();
      stats.factor_bytes = stats.sparse_factor_bytes + stats.schur_bytes;
      break;
    } catch (...) {
      stats.error = classify_current_exception();
      stats.failure = failure_text(stats.error);
      trace_instant("error", error_code_name(stats.error.code));
    }
    if (attempt == max_attempts) break;
    const char* action = plan_recovery(stats.error, eff, deg, system.ns());
    if (!action) break;
    stats.recoveries.push_back(
        RecoveryAction{action, error_code_name(stats.error.code),
                       stats.error.site + ": " + stats.error.detail});
    Metrics::instance().add(Metric::kRecoveries, 1);
    if (std::string_view(action) == "precision_escalate")
      Metrics::instance().add(Metric::kPrecisionEscalations, 1);
    trace_instant("recovery", action);
    log_info("recovery: ", action, " after ",
             error_code_name(stats.error.code), " at ", stats.error.site);
  }
  impl.cfg = eff;
  if (!stats.success) impl.reset_factors();
}

/// Planner inputs for the predicted-vs-actual audit, computed *before* the
/// solver session so the symbolic analysis it runs can neither inflate the
/// measured peak nor fail a tight-budget run. Failure (e.g. an ambient
/// budget) degrades to "no audit": factor_entries stays 0 and the predicted
/// bytes are not recorded.
template <class T>
std::optional<PlannerInputs> planner_audit_inputs(
    const CoupledSystem<T>& system, const Config& config) {
  try {
    return planner_inputs(system, config);
  } catch (...) {
    return std::nullopt;
  }
}

/// Record the planner's predicted peak for the *effective* (post-recovery)
/// config: recoveries change n_c/n_S/n_b and can escalate the factor
/// precision, so the scalar size is re-derived from `eff` rather than
/// taken from the pre-run inputs.
template <class T>
void record_planner_audit(const std::optional<PlannerInputs>& inputs,
                          const Config& eff, SolveStats& stats) {
  if (!inputs) return;
  PlannerInputs in = *inputs;
  in.scalar_bytes = eff.factor_precision == Precision::kSingle
                        ? sizeof(single_of_t<T>)
                        : sizeof(T);
  stats.planner_predicted_bytes = predict_peak(eff.strategy, in, eff);
}

/// Per-call scaffolding shared by solve_coupled and factorize_coupled:
/// peak reset, budget/thread scopes, tracing session, metrics, sampler,
/// failpoints, total timer and the end-of-run stat snapshot around `body`.
template <class Body>
void with_solver_session(const Config& config, SolveStats& stats,
                         const char* span_kind, const Body& body) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset_peak();
  ScopedBudget budget(config.memory_budget);
  ScopedNumThreads threads(config.num_threads);

  // Tracing session: if the caller did not already enable the global
  // tracer (bench drivers tracing several runs into one file do), a
  // per-solve Config request turns it on for the duration of this call
  // and exports to config.trace_path on the way out.
  auto& tracer = Tracer::instance();
  const bool was_tracing = tracer.enabled();
  const bool own_session = config.trace_enabled && !was_tracing;
  if (own_session) tracer.set_enabled(true);
  // Counters are reported as a delta over this call, not a global reset:
  // a sweep runs many solver sessions in one process and each report must
  // carry its own run's counts (and concurrent sessions must not clobber
  // each other's baselines).
  const Metrics::Values metrics_before = Metrics::instance().values();
  std::optional<TraceSampler> sampler;
  if (tracer.enabled() && config.trace_sample_us > 0)
    sampler.emplace(config.trace_sample_us);

  // Failpoints are armed once for the whole call, not per attempt: a
  // "once" injection stays spent across retries, so recovery from an
  // injected failure can succeed just like recovery from a real one.
  ScopedFailpoints failpoints(config.failpoints);

  Timer total;
  {
    TraceSpan span(span_kind, strategy_name(config.strategy));
    span.arg("n_total", static_cast<long long>(stats.n_total))
        .arg("n_fem", static_cast<long long>(stats.n_fem))
        .arg("n_bem", static_cast<long long>(stats.n_bem));
    body();
  }  // close the top span before exporting
  stats.total_seconds = total.seconds();
  stats.peak_bytes = tracker.peak();
  // Peak attribution: the per-tag breakdown captured when the high-water
  // mark last advanced. Recorded on failures too -- an OOM report that
  // names the owning subsystem is the whole point of the ledger.
  stats.peak_by_tag.clear();
  const MemTagArray at_peak = tracker.peak_attribution();
  for (std::size_t t = 0; t < kMemTagCount; ++t)
    if (at_peak[t] > 0)
      stats.peak_by_tag.emplace_back(mem_tag_name(static_cast<MemTag>(t)),
                                     at_peak[t]);
  if (stats.planner_predicted_bytes > 0 && stats.peak_bytes > 0)
    stats.planner_misprediction =
        static_cast<double>(stats.planner_predicted_bytes) /
        static_cast<double>(stats.peak_bytes);
  stats.counters = Metrics::instance().delta_since(metrics_before);

  sampler.reset();  // final memory sample, then stop the sampler thread
  if (own_session) {
    if (!config.trace_path.empty()) tracer.write_json(config.trace_path);
    tracer.set_enabled(false);
  }
}

// ---------------------------------------------------------------------------
// Checkpointing (DESIGN.md §14): durable save/load of a FactoredCoupled.
// ---------------------------------------------------------------------------

// The system identity (fembem::SystemFingerprint, fembem/fingerprint.h)
// is shared with the solver-service factorization cache: the factors are
// only valid for the exact system they were computed from, so load checks
// dimensions, sparsity, matrix values and the BEM geometry — not just
// shapes — before trusting a single factor byte.
using fembem::SystemFingerprint;
using fembem::detail::vec_crc;

void write_fingerprint(serialize::Writer& w, const SystemFingerprint& fp) {
  w.write_u32(fp.scalar);
  w.write_i64(fp.nv);
  w.write_i64(fp.ns);
  w.write_i64(fp.nnz_vv);
  w.write_i64(fp.nnz_sv);
  w.write_u8(fp.symmetric);
  w.write_u32(fp.crc_vv);
  w.write_u32(fp.crc_sv);
  w.write_u32(fp.crc_pts);
}

SystemFingerprint read_fingerprint(serialize::Reader& in) {
  SystemFingerprint fp;
  fp.scalar = in.read_u32();
  fp.nv = in.read_i64();
  fp.ns = in.read_i64();
  fp.nnz_vv = in.read_i64();
  fp.nnz_sv = in.read_i64();
  fp.symmetric = in.read_u8();
  fp.crc_vv = in.read_u32();
  fp.crc_sv = in.read_u32();
  fp.crc_pts = in.read_u32();
  return fp;
}

void check_fingerprint(const SystemFingerprint& stored,
                       const SystemFingerprint& live) {
  if (stored.scalar != live.scalar)
    throw ClassifiedError(
        ErrorCode::kIo, "ckpt.scalar",
        "checkpoint scalar type (code " + std::to_string(stored.scalar) +
            ") does not match the requested solver type (code " +
            std::to_string(live.scalar) + ")");
  if (!(stored == live))
    throw ClassifiedError(
        ErrorCode::kIo, "ckpt.fingerprint",
        "checkpoint was created from a different coupled system "
        "(dimension / sparsity / value / geometry fingerprint mismatch)");
}

/// The factorization-shaping Config fields stored in the checkpoint: on
/// load they must match the factors byte for byte, so they come from the
/// file, not the caller. Runtime-only knobs (threads, budget, tracing,
/// failpoints, ooc_dir, recovery policy) stay the caller's.
void write_config(serialize::Writer& w, const Config& c) {
  w.write_i32(static_cast<std::int32_t>(c.strategy));
  w.write_i64(c.n_c);
  w.write_i64(c.n_S);
  w.write_i64(c.n_b);
  w.write_u8(c.sparse_compression ? 1 : 0);
  w.write_f64(c.eps);
  w.write_f64(c.eta);
  w.write_i64(c.hmat_leaf);
  w.write_i32(static_cast<std::int32_t>(c.ordering));
  w.write_i32(c.refine_iterations);
  w.write_f64(c.refine_tolerance);
  w.write_i32(static_cast<std::int32_t>(c.factor_precision));
  w.write_u8(c.parallel_fronts ? 1 : 0);
  w.write_u8(c.hmat_symmetric_ldlt ? 1 : 0);
  w.write_i64(c.rand_initial_rank);
  w.write_f64(c.rand_max_rank_ratio);
  w.write_u8(c.out_of_core ? 1 : 0);
}

Config read_config(serialize::Reader& in, const Config& runtime) {
  Config c = runtime;
  c.strategy = static_cast<Strategy>(in.read_i32());
  c.n_c = static_cast<index_t>(in.read_i64());
  c.n_S = static_cast<index_t>(in.read_i64());
  c.n_b = static_cast<index_t>(in.read_i64());
  c.sparse_compression = in.read_u8() != 0;
  c.eps = in.read_f64();
  c.eta = in.read_f64();
  c.hmat_leaf = static_cast<index_t>(in.read_i64());
  c.ordering = static_cast<decltype(c.ordering)>(in.read_i32());
  c.refine_iterations = in.read_i32();
  c.refine_tolerance = in.read_f64();
  c.factor_precision = static_cast<Precision>(in.read_i32());
  c.parallel_fronts = in.read_u8() != 0;
  c.hmat_symmetric_ldlt = in.read_u8() != 0;
  c.rand_initial_rank = static_cast<index_t>(in.read_i64());
  c.rand_max_rank_ratio = in.read_f64();
  c.out_of_core = in.read_u8() != 0;
  return c;
}

template <class T>
void write_coupling(serialize::Writer& w, const detail::FactoredImpl<T>& f) {
  // CRC of the cluster-tree permutation: load rebuilds the tree from the
  // live geometry and cross-checks it, so a silently different clustering
  // (code change, different leaf size) can never be paired with factors
  // computed in the old tree order.
  w.write_u32(vec_crc(f.tree->tree_of_original()));
  const sparse::Csr<T>& A = f.A_sv_tree;
  w.write_i64(A.rows());
  w.write_i64(A.cols());
  w.write_i64(A.nnz());
  std::vector<std::int64_t> row_len(static_cast<std::size_t>(A.rows()));
  std::vector<index_t> cols;
  std::vector<T> vals;
  cols.reserve(static_cast<std::size_t>(A.nnz()));
  vals.reserve(static_cast<std::size_t>(A.nnz()));
  for (index_t r = 0; r < A.rows(); ++r) {
    row_len[static_cast<std::size_t>(r)] = A.row_end(r) - A.row_begin(r);
    for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k) {
      cols.push_back(A.col(k));
      vals.push_back(A.value(k));
    }
  }
  serialize::write_vec(w, row_len);
  serialize::write_vec(w, cols);
  serialize::write_vec(w, vals);
}

template <class T>
void read_coupling(serialize::Reader& in, const CoupledSystem<T>& sys,
                   detail::FactoredImpl<T>& f) {
  const std::uint32_t stored_perm = in.read_u32();
  if (stored_perm != vec_crc(f.tree->tree_of_original()))
    throw ClassifiedError(
        ErrorCode::kIo, "ckpt.fingerprint",
        "surface cluster tree rebuilt on load does not match the "
        "checkpoint's (geometry or clustering changed since save)");
  const std::int64_t rows = in.read_i64();
  const std::int64_t cols = in.read_i64();
  const std::int64_t nnz = in.read_i64();
  if (rows != sys.ns() || cols != sys.nv() || nnz < 0)
    throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                          "tree-ordered coupling block shape mismatch");
  const auto row_len = serialize::read_vec<std::int64_t>(in);
  const auto cidx = serialize::read_vec<index_t>(in);
  const auto vals = serialize::read_vec<T>(in);
  if (row_len.size() != static_cast<std::size_t>(rows) ||
      cidx.size() != static_cast<std::size_t>(nnz) ||
      vals.size() != static_cast<std::size_t>(nnz))
    throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                          "tree-ordered coupling block length mismatch");
  MemoryScope scope(MemTag::kCouplingBlock);
  sparse::Triplets<T> trip(static_cast<index_t>(rows),
                           static_cast<index_t>(cols));
  std::size_t k = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t len = row_len[static_cast<std::size_t>(r)];
    if (len < 0 || k + static_cast<std::size_t>(len) > cidx.size())
      throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                            "tree-ordered coupling row lengths exceed nnz");
    for (std::int64_t e = 0; e < len; ++e, ++k)
      trip.add(static_cast<index_t>(r), cidx[k], vals[k]);
  }
  if (k != static_cast<std::size_t>(nnz))
    throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                          "tree-ordered coupling row lengths exceed nnz");
  f.A_sv_tree = sparse::Csr<T>::from_triplets(trip);
}

/// Serialize every factor bank of a successful factorization; throws
/// IoError / ClassifiedError on failure. Section order is load order.
template <class T>
std::size_t save_factored_impl(const detail::FactoredImpl<T>& f,
                               const std::string& path) {
  TraceSpan span("phase", "checkpoint_save");
  serialize::Writer w(path);
  w.begin_section("meta");
  write_fingerprint(w, f.sys->fingerprint());
  w.write_u8(f.single ? 1 : 0);
  w.write_u64(f.fstats.sparse_factor_bytes);
  w.write_u64(f.fstats.schur_bytes);
  w.write_f64(f.fstats.schur_compression_ratio);
  w.write_i64(f.fstats.randomized_rank);
  w.end_section();
  w.begin_section("config");
  write_config(w, f.cfg);
  w.end_section();
  w.begin_section("coupling");
  write_coupling(w, f);
  w.end_section();
  w.begin_section("interior");
  if (f.single) {
    f.interior_f.save(w);
  } else {
    f.interior.save(w);
  }
  w.end_section();
  w.begin_section("schur");
  // Exactly one Schur bank is live on an ok() handle: 1 = dense, 2 = H.
  if (f.single) {
    if (f.schur_h_f) {
      w.write_u8(2);
      f.schur_h_f->save(w);
    } else {
      w.write_u8(1);
      f.schur_dense_f.save(w);
    }
  } else {
    if (f.schur_h) {
      w.write_u8(2);
      f.schur_h->save(w);
    } else {
      w.write_u8(1);
      f.schur_dense.save(w);
    }
  }
  w.end_section();
  return w.commit();
}

/// Reconstruct the factored state from a verified checkpoint; throws the
/// classified error on any integrity or compatibility failure. Returns
/// the checkpoint file size.
template <class T>
std::size_t load_factored_impl(const std::string& path,
                               const CoupledSystem<T>& system,
                               const Config& runtime,
                               detail::FactoredImpl<T>& f,
                               SolveStats& stats) {
  using F = typename detail::FactoredImpl<T>::F;
  serialize::Reader in(path);  // verifies trailer, footer, every CRC

  in.open_section("meta");
  check_fingerprint(read_fingerprint(in), system.fingerprint());
  const bool single = in.read_u8() != 0;
  stats.sparse_factor_bytes = static_cast<std::size_t>(in.read_u64());
  stats.schur_bytes = static_cast<std::size_t>(in.read_u64());
  stats.schur_compression_ratio = in.read_f64();
  stats.randomized_rank = static_cast<index_t>(in.read_i64());

  in.open_section("config");
  f.cfg = read_config(in, runtime);
  if (single != (f.cfg.factor_precision == Precision::kSingle))
    throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                          "checkpoint precision flag disagrees with its "
                          "stored factor_precision");
  stats.factor_precision = f.cfg.factor_precision;

  // The cluster tree is rebuilt deterministically from the live geometry;
  // the coupling section cross-checks its permutation against the save.
  f.tree = std::make_shared<const ClusterTree>(system.surface_points(),
                                               f.cfg.hmat_leaf);

  in.open_section("coupling");
  read_coupling(in, system, f);

  in.open_section("interior");
  f.single = single;
  if (single) {
    f.interior_f.load(in, runtime.ooc_dir);
  } else {
    f.interior.load(in, runtime.ooc_dir);
  }

  in.open_section("schur");
  const std::uint8_t bank = in.read_u8();
  HOptions ho;
  ho.eps = f.cfg.eps;
  ho.eta = f.cfg.eta;
  if (bank == 2) {
    if (single) {
      f.schur_h_f.emplace(HMatrix<F>::load(*f.tree, *f.tree, ho, in));
    } else {
      f.schur_h.emplace(HMatrix<T>::load(*f.tree, *f.tree, ho, in));
    }
  } else if (bank == 1) {
    if (single) {
      f.schur_dense_f.load(in);
    } else {
      f.schur_dense.load(in);
    }
  } else {
    throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                          "unknown Schur factor bank tag in checkpoint");
  }
  stats.factor_bytes = stats.sparse_factor_bytes + stats.schur_bytes;
  return in.file_bytes();
}

}  // namespace

template <class T>
SolveStats solve_coupled(const CoupledSystem<T>& system,
                         const Config& config) {
  SolveStats stats;
  stats.n_fem = system.nv();
  stats.n_bem = system.ns();
  stats.n_total = system.total();

  {
    const std::string problem = validate_config(config);
    if (!problem.empty()) {
      stats.error = config_error(problem);
      stats.failure = failure_text(stats.error);
      return stats;
    }
  }

  detail::FactoredImpl<T> impl;
  impl.sys = &system;
  const auto audit_in = planner_audit_inputs(system, config);
  with_solver_session(config, stats, "solve", [&] {
    run_attempts<T>(system, config, impl, stats,
                    [&](detail::FactoredImpl<T>& f) {
                      // One-column batch from the system's built-in RHS.
                      MemoryScope scope(MemTag::kRhsWorkspace);
                      const index_t nv = system.nv();
                      const index_t ns = system.ns();
                      la::Matrix<T> Bv(nv, 1), Bs(ns, 1);
                      for (index_t i = 0; i < nv; ++i)
                        Bv(i, 0) = system.b_v[i];
                      for (index_t i = 0; i < ns; ++i)
                        Bs(i, 0) = system.b_s[i];
                      stats.nrhs = 1;
                      solve_batch(f, Bv.view(), Bs.view(), stats);
                      la::Vector<T> xv(nv), xs(ns);
                      for (index_t i = 0; i < nv; ++i) xv[i] = Bv(i, 0);
                      for (index_t i = 0; i < ns; ++i) xs[i] = Bs(i, 0);
                      stats.relative_error = system.relative_error(xv, xs);
                    });
    record_planner_audit<T>(audit_in, impl.cfg, stats);
  });
  return stats;
}

template <class T>
FactoredCoupled<T> factorize_coupled(const CoupledSystem<T>& system,
                                     const Config& config,
                                     SweepContext* sweep) {
  FactoredCoupled<T> handle;
  handle.impl_ = std::make_unique<detail::FactoredImpl<T>>();
  detail::FactoredImpl<T>& impl = *handle.impl_;
  impl.sys = &system;
  impl.cfg = config;
  SolveStats& stats = impl.fstats;
  stats.n_fem = system.nv();
  stats.n_bem = system.ns();
  stats.n_total = system.total();

  {
    const std::string problem = validate_config(config);
    if (!problem.empty()) {
      stats.error = config_error(problem);
      stats.failure = failure_text(stats.error);
      return handle;
    }
  }

  const auto audit_in = planner_audit_inputs(system, config);
  with_solver_session(config, stats, "factorize", [&] {
    run_attempts<T>(system, config, impl, stats, nullptr, sweep);
    record_planner_audit<T>(audit_in, impl.cfg, stats);
  });
  return handle;
}

// -- FactoredCoupled ---------------------------------------------------------

template <class T>
FactoredCoupled<T>::FactoredCoupled() = default;
template <class T>
FactoredCoupled<T>::~FactoredCoupled() = default;
template <class T>
FactoredCoupled<T>::FactoredCoupled(FactoredCoupled&&) noexcept = default;
template <class T>
FactoredCoupled<T>& FactoredCoupled<T>::operator=(FactoredCoupled&&) noexcept =
    default;

template <class T>
bool FactoredCoupled<T>::ok() const {
  return impl_ != nullptr && impl_->ok;
}

template <class T>
const SolveStats& FactoredCoupled<T>::stats() const {
  static const SolveStats empty;
  return impl_ ? impl_->fstats : empty;
}

template <class T>
const Config& FactoredCoupled<T>::config() const {
  static const Config defaults;
  return impl_ ? impl_->cfg : defaults;
}

template <class T>
index_t FactoredCoupled<T>::nv() const {
  return impl_ && impl_->sys ? impl_->sys->nv() : 0;
}

template <class T>
index_t FactoredCoupled<T>::ns() const {
  return impl_ && impl_->sys ? impl_->sys->ns() : 0;
}

template <class T>
SolveStats FactoredCoupled<T>::solve(la::MatrixView<T> B_v,
                                     la::MatrixView<T> B_s) const {
  SolveStats stats;
  stats.nrhs = B_v.cols();
  if (!ok()) {
    stats.error = SolveError{ErrorCode::kInternal, "handle",
                             "solve on an unfactored handle"};
    stats.failure = failure_text(stats.error);
    return stats;
  }
  stats.n_fem = impl_->sys->nv();
  stats.n_bem = impl_->sys->ns();
  stats.n_total = impl_->sys->total();
  stats.factor_precision = impl_->cfg.factor_precision;
  if (B_v.cols() != B_s.cols() || B_v.rows() != impl_->sys->nv() ||
      B_s.rows() != impl_->sys->ns()) {
    stats.error = SolveError{ErrorCode::kInternal, "handle",
                             "right-hand-side block shape mismatch"};
    stats.failure = failure_text(stats.error);
    return stats;
  }
  // Deliberately no budget/thread scopes and no retry ladder here: solve()
  // must be safe to call concurrently from several threads against one
  // factorization, so it runs entirely in the caller's context and reports
  // any failure without touching global state. The counters are a read-only
  // delta of the process-wide Metrics (concurrent solves may bleed into
  // each other's deltas; each count still happened during this window).
  const Metrics::Values metrics_before = Metrics::instance().values();
  Timer total;
  try {
    solve_batch(*impl_, B_v, B_s, stats);
    stats.success = true;
  } catch (...) {
    stats.error = classify_current_exception();
    stats.failure = failure_text(stats.error);
    trace_instant("error", error_code_name(stats.error.code));
  }
  stats.total_seconds = total.seconds();
  stats.counters = Metrics::instance().delta_since(metrics_before);
  return stats;
}

template <class T>
SolveStats FactoredCoupled<T>::solve_lagged(
    const fembem::CoupledSystem<T>& target, la::MatrixView<T> B_v,
    la::MatrixView<T> B_s) const {
  SolveStats stats;
  stats.nrhs = B_v.cols();
  if (!ok()) {
    stats.error = SolveError{ErrorCode::kInternal, "handle",
                             "solve_lagged on an unfactored handle"};
    stats.failure = failure_text(stats.error);
    return stats;
  }
  stats.n_fem = target.nv();
  stats.n_bem = target.ns();
  stats.n_total = target.total();
  stats.factor_precision = impl_->cfg.factor_precision;
  if (target.nv() != impl_->sys->nv() || target.ns() != impl_->sys->ns()) {
    stats.error = SolveError{ErrorCode::kInternal, "handle",
                             "target system shape differs from the "
                             "factored system"};
    stats.failure = failure_text(stats.error);
    return stats;
  }
  if (B_v.cols() != B_s.cols() || B_v.rows() != target.nv() ||
      B_s.rows() != target.ns()) {
    stats.error = SolveError{ErrorCode::kInternal, "handle",
                             "right-hand-side block shape mismatch"};
    stats.failure = failure_text(stats.error);
    return stats;
  }
  // Lagged refinement without a convergence target would silently return
  // the neighboring frequency's answer.
  if (!(impl_->cfg.refine_tolerance > 0) ||
      impl_->cfg.refine_iterations < 1) {
    stats.error =
        SolveError{ErrorCode::kInternal, "handle",
                   "solve_lagged requires refine_tolerance > 0 and "
                   "refine_iterations >= 1"};
    stats.failure = failure_text(stats.error);
    return stats;
  }
  // Armed like save(): the refine.stall failpoint must be able to force
  // the fallback path deterministically in the sweep tests.
  ScopedFailpoints failpoints(impl_->cfg.failpoints);
  BatchOverride<T> ov;
  ov.residual_sys = &target;
  ov.refine_iterations = impl_->cfg.refine_iterations;
  // Two decades below the configured bar: a fresh solve's last sweep
  // overshoots the tolerance by its (fast) contraction factor, while the
  // slowly-contracting lagged iteration halts right at it — leaving a
  // forward error a full kappa(A) above the fresh path. Aiming lower
  // equalizes the two, so a sweep's accuracy does not depend on which
  // tier served each frequency.
  ov.refine_tolerance = 0.01 * impl_->cfg.refine_tolerance;
  const Metrics::Values metrics_before = Metrics::instance().values();
  Timer total;
  try {
    Metrics::instance().add(Metric::kLaggedSolves, 1);
    solve_batch(*impl_, B_v, B_s, stats, &ov);
    stats.success = true;
  } catch (...) {
    stats.error = classify_current_exception();
    stats.failure = failure_text(stats.error);
    trace_instant("error", error_code_name(stats.error.code));
  }
  stats.total_seconds = total.seconds();
  stats.counters = Metrics::instance().delta_since(metrics_before);
  return stats;
}

template <class T>
std::size_t FactoredCoupled<T>::save(const std::string& path,
                                     SolveError* error) const {
  if (error) *error = SolveError{};
  if (!ok()) {
    if (error)
      *error = SolveError{ErrorCode::kInternal, "handle",
                          "save on an unfactored handle"};
    return 0;
  }
  // Failpoints armed exactly like a solver session, so cfg.failpoints /
  // CS_FAILPOINTS drive the ckpt.* crash-injection sites during the save.
  ScopedFailpoints failpoints(impl_->cfg.failpoints);
  try {
    return save_factored_impl(*impl_, path);
  } catch (...) {
    const SolveError err = classify_current_exception();
    trace_instant("error", error_code_name(err.code));
    log_info("checkpoint save failed (", err.site, "): ", err.detail);
    if (error) *error = err;
    return 0;
  }
}

template <class T>
FactoredCoupled<T> load_factored(const std::string& path,
                                 const CoupledSystem<T>& system,
                                 const Config& config) {
  FactoredCoupled<T> handle;
  handle.impl_ = std::make_unique<detail::FactoredImpl<T>>();
  detail::FactoredImpl<T>& impl = *handle.impl_;
  impl.sys = &system;
  impl.cfg = config;
  SolveStats& stats = impl.fstats;
  stats.n_fem = system.nv();
  stats.n_bem = system.ns();
  stats.n_total = system.total();

  {
    // The caller's config governs the checkpoint_fallback refactorization,
    // so it is validated exactly like a factorize_coupled config.
    const std::string problem = validate_config(config);
    if (!problem.empty()) {
      stats.error = config_error(problem);
      stats.failure = failure_text(stats.error);
      return handle;
    }
  }

  const auto audit_in = planner_audit_inputs(system, config);
  with_solver_session(config, stats, "load", [&] {
    try {
      ScopedPhase phase(stats.phases, "checkpoint_load");
      TraceSpan span("phase", "checkpoint_load");
      const std::size_t bytes =
          load_factored_impl(path, system, config, impl, stats);
      impl.ok = true;
      stats.success = true;
      stats.attempts = 1;
      stats.checkpoint_source = "checkpoint";
      stats.checkpoint_bytes = bytes;
    } catch (...) {
      stats.error = classify_current_exception();
      stats.failure = failure_text(stats.error);
      trace_instant("error", error_code_name(stats.error.code));
      // Drop anything the partial load produced, including any stats the
      // meta section primed before the failure surfaced.
      impl.reset_factors();
      impl.cfg = config;
      stats.sparse_factor_bytes = 0;
      stats.schur_bytes = 0;
      stats.schur_compression_ratio = 0;
      stats.randomized_rank = 0;
      stats.factor_bytes = 0;
    }
    if (!impl.ok && config.auto_recover) {
      // checkpoint_fallback rung of the recovery ladder: the checkpoint is
      // unusable (missing, torn, corrupt, or for a different system), so
      // refactorize from the live system under the caller's config — the
      // answer stays correct, only the restart speedup is lost.
      stats.recoveries.push_back(RecoveryAction{
          "checkpoint_fallback", error_code_name(stats.error.code),
          stats.error.site + ": " + stats.error.detail});
      Metrics::instance().add(Metric::kRecoveries, 1);
      trace_instant("recovery", "checkpoint_fallback");
      log_info("recovery: checkpoint_fallback after ",
               error_code_name(stats.error.code), " at ", stats.error.site);
      run_attempts<T>(system, config, impl, stats, nullptr);
      if (stats.success) stats.checkpoint_source = "refactorized";
      record_planner_audit<T>(audit_in, impl.cfg, stats);
    }
  });
  return handle;
}

template SolveStats solve_coupled<double>(const CoupledSystem<double>&,
                                          const Config&);
template SolveStats solve_coupled<complexd>(const CoupledSystem<complexd>&,
                                            const Config&);
template FactoredCoupled<double> factorize_coupled<double>(
    const CoupledSystem<double>&, const Config&, SweepContext*);
template FactoredCoupled<complexd> factorize_coupled<complexd>(
    const CoupledSystem<complexd>&, const Config&, SweepContext*);
template FactoredCoupled<double> load_factored<double>(
    const std::string&, const CoupledSystem<double>&, const Config&);
template FactoredCoupled<complexd> load_factored<complexd>(
    const std::string&, const CoupledSystem<complexd>&, const Config&);
template class FactoredCoupled<double>;
template class FactoredCoupled<complexd>;

}  // namespace cs::coupled
