// Pipe acoustics study: compare all six coupled solution strategies on the
// paper's academic "short pipe" test case and pick the best one for a given
// memory budget — the workflow an engineer would run before a production
// campaign (paper sections V-B/V-C).
//
//   $ ./pipe_acoustics [--n 12000] [--budget-mib 512] [--eps 1e-3]
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/memory.h"
#include "common/table.h"
#include "coupled/coupled.h"

int main(int argc, char** argv) {
  using namespace cs;
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 12000)");
  args.describe("budget-mib", "memory budget in MiB, 0 = unlimited");
  args.describe("eps", "low-rank accuracy (default 1e-3)");
  args.check("Compares the six coupled strategies on the pipe test case.");

  fembem::SystemParams params;
  params.total_unknowns = static_cast<index_t>(args.get_int("n", 12000));
  const std::size_t budget =
      static_cast<std::size_t>(args.get_int("budget-mib", 0)) * 1024 * 1024;
  const double eps = args.get_double("eps", 1e-3);

  std::printf("assembling pipe system with ~%lld unknowns...\n",
              args.get_int("n", 12000));
  auto system = fembem::make_pipe_system<double>(params);
  std::printf("-> %d FEM + %d BEM unknowns\n\n", system.nv(), system.ns());

  struct Row {
    coupled::Strategy strategy;
    const char* note;
  };
  const std::vector<Row> rows = {
      {coupled::Strategy::kBaselineCoupling, "reference (II-E)"},
      {coupled::Strategy::kAdvancedCoupling, "reference (II-F)"},
      {coupled::Strategy::kMultiSolve, "Algorithm 1"},
      {coupled::Strategy::kMultiSolveCompressed, "Algorithm 2"},
      {coupled::Strategy::kMultiFactorization, "Algorithm 3"},
      {coupled::Strategy::kMultiFactorizationCompressed, "Algorithm 3 + H"},
  };

  TablePrinter table({"strategy", "note", "time s", "peak MiB", "Schur MiB",
                      "rel err", "status"});
  const char* best = nullptr;
  double best_time = 1e300;
  for (const auto& row : rows) {
    coupled::Config cfg;
    cfg.strategy = row.strategy;
    cfg.eps = eps;
    cfg.memory_budget = budget;
    auto stats = coupled::solve_coupled(system, cfg);
    auto mib = [](std::size_t b) {
      return TablePrinter::fmt(b / (1024.0 * 1024.0), 1);
    };
    char err[32];
    std::snprintf(err, sizeof(err), "%.2e", stats.relative_error);
    table.add_row({coupled::strategy_name(row.strategy), row.note,
                   stats.success ? TablePrinter::fmt(stats.total_seconds, 2)
                                 : "-",
                   stats.success ? mib(stats.peak_bytes) : "-",
                   stats.success ? mib(stats.schur_bytes) : "-",
                   stats.success ? err : "-",
                   stats.success ? "ok" : "out of memory"});
    if (stats.success && stats.total_seconds < best_time) {
      best_time = stats.total_seconds;
      best = coupled::strategy_name(row.strategy);
    }
  }
  table.print();
  if (best != nullptr)
    std::printf("\nfastest feasible strategy at this size/budget: %s "
                "(%.2f s)\n", best, best_time);
  else
    std::printf("\nno strategy fit in the budget; raise --budget-mib\n");
  return 0;
}
