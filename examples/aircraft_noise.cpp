// Industrial-style aero-acoustic run (paper section VI): a complex,
// non-symmetric coupled system whose BEM surface includes dofs with no
// volume coupling (fuselage/wing), solved with the production-recommended
// configuration — multi-factorization with sparse + dense compression and
// the largest Schur blocks the memory allows.
//
//   $ ./aircraft_noise [--n 10000] [--budget-mib 768]
#include <cstdio>

#include "common/cli.h"
#include "common/memory.h"
#include "coupled/coupled.h"

int main(int argc, char** argv) {
  using namespace cs;
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 10000)");
  args.describe("budget-mib", "memory budget in MiB (default 768)");
  args.describe("kappa", "acoustic wavenumber (default 1.2)");
  args.check("Industrial-style complex non-symmetric coupled solve.");

  fembem::SystemParams params;
  params.total_unknowns = static_cast<index_t>(args.get_int("n", 10000));
  params.kappa = args.get_double("kappa", 1.2);
  params.sigma_real = 2.5;
  params.sigma_imag = 0.4;           // absorbing jet-flow medium
  params.symmetric_bem = false;      // plain collocation: non-symmetric
  params.extra_surface_ratio = 1.0;  // fuselage + wing BEM-only dofs

  std::printf("assembling industrial system (complex, non-symmetric)...\n");
  auto system = fembem::make_pipe_system<complexd>(params);
  std::printf("-> %d FEM + %d BEM unknowns (BEM share %.1f%%)\n",
              system.nv(), system.ns(),
              100.0 * system.ns() / system.total());

  const std::size_t budget =
      static_cast<std::size_t>(args.get_int("budget-mib", 768)) * 1024 *
      1024;

  // Production recipe from the paper's industrial conclusions: compressed
  // multi-factorization; start from the largest Schur blocks (n_b = 1) and
  // shrink blocks until the run fits in memory.
  for (index_t nb = 1; nb <= 8; nb *= 2) {
    coupled::Config cfg;
    cfg.strategy = coupled::Strategy::kMultiFactorizationCompressed;
    cfg.n_b = nb;
    cfg.eps = 1e-4;  // "considered enough by domain specialists"
    cfg.memory_budget = budget;
    std::printf("\ntrying multi-factorization with n_b = %d (Schur blocks "
                "of ~%d)...\n", nb, system.ns() / nb);
    auto stats = coupled::solve_coupled(system, cfg);
    if (!stats.success) {
      std::printf("  did not fit: %s\n", stats.failure.c_str());
      continue;
    }
    std::printf("  solved in %.2f s, peak memory %s\n", stats.total_seconds,
                format_bytes(stats.peak_bytes).c_str());
    std::printf("  Schur storage %s (ratio %.2f), relative error %.2e\n",
                format_bytes(stats.schur_bytes).c_str(),
                stats.schur_compression_ratio, stats.relative_error);
    return 0;
  }
  std::printf("\nno block count fit in the budget; raise --budget-mib\n");
  return 1;
}
