// Export a generated coupled FEM/BEM system to MatrixMarket / text files so
// it can be fed to external solvers (MUMPS, hmat-oss, ...) for
// cross-validation — the same reproducibility service the paper's public
// test_fembem generator provides.
//
//   $ ./export_system --n 5000 --prefix /tmp/pipe5000 [--complex]
#include <cstdio>

#include "common/cli.h"
#include "fembem/io.h"

int main(int argc, char** argv) {
  using namespace cs;
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 5000)");
  args.describe("prefix", "output file prefix (default ./pipe)");
  args.describe("complex", "emit the complex non-symmetric variant");
  args.describe("kappa", "wavenumber for the complex variant (default 1.2)");
  args.check("Exports a coupled FEM/BEM system to MatrixMarket files.");

  fembem::SystemParams params;
  params.total_unknowns = static_cast<index_t>(args.get_int("n", 5000));
  const std::string prefix = args.get("prefix", "pipe");

  if (args.get_bool("complex", false)) {
    params.kappa = args.get_double("kappa", 1.2);
    params.sigma_real = 2.5;
    params.sigma_imag = 0.4;
    params.symmetric_bem = false;
    auto sys = fembem::make_pipe_system<complexd>(params);
    fembem::export_system(sys, prefix);
    std::printf("exported complex system (%d FEM + %d BEM) under '%s_*'\n",
                sys.nv(), sys.ns(), prefix.c_str());
  } else {
    auto sys = fembem::make_pipe_system<double>(params);
    fembem::export_system(sys, prefix);
    std::printf("exported real system (%d FEM + %d BEM) under '%s_*'\n",
                sys.nv(), sys.ns(), prefix.c_str());
  }
  std::printf("files: _Avv.mtx _Asv.mtx _bv.mtx _bs.mtx _xv_ref.mtx "
              "_xs_ref.mtx _surface.txt\n");
  return 0;
}
