// Tour of the standalone H-matrix library: compressed assembly of a BEM
// operator via ACA, accuracy/compression trade-off across eps, H-LU solve,
// and the compressed AXPY primitive the coupled algorithms are built on.
//
//   $ ./hmatrix_tour [--n-theta 32]
#include <cstdio>

#include "common/cli.h"
#include "common/random.h"
#include "fembem/bem.h"
#include "hmat/hmatrix.h"
#include "la/blas.h"

int main(int argc, char** argv) {
  using namespace cs;
  CliArgs args(argc, argv);
  args.describe("n-theta", "angular resolution of the surface (default 32)");
  args.check("Standalone H-matrix demo: ACA assembly, H-LU, compressed "
             "AXPY.");

  // A cylinder surface and its Laplace single-layer BEM operator.
  fembem::PipeParams pp;
  pp.n_theta = static_cast<index_t>(args.get_int("n-theta", 32));
  pp.n_axial = 2 * pp.n_theta;
  pp.n_radial = 3;
  auto mesh = fembem::make_pipe_mesh(pp);
  fembem::BemGenerator<double> kernel(fembem::make_bem_surface(mesh), 0.0,
                                      /*symmetric=*/true);
  const index_t n = kernel.rows();
  std::printf("BEM operator on %d surface dofs (dense would be %s)\n", n,
              format_bytes(static_cast<std::size_t>(n) * n * 8).c_str());

  hmat::ClusterTree tree(kernel.surface().points, 48);
  std::printf("cluster tree: %d nodes, depth %d\n\n", tree.node_count(),
              tree.depth());

  std::printf("%-8s %-12s %-10s %-10s\n", "eps", "storage", "ratio",
              "max rank");
  for (double eps : {1e-2, 1e-4, 1e-6}) {
    hmat::HOptions opt;
    opt.eps = eps;
    auto H = hmat::HMatrix<double>::assemble(tree, tree, kernel, opt);
    std::printf("%-8.0e %-12s %-10.3f %-10d\n", eps,
                format_bytes(H.memory_bytes()).c_str(),
                H.compression_ratio(), H.max_rank());
  }

  // Solve S x = b with H-LU at eps = 1e-6 and verify against a matvec.
  hmat::HOptions opt;
  opt.eps = 1e-6;
  auto H = hmat::HMatrix<double>::assemble(tree, tree, kernel, opt);

  Rng rng(1);
  la::Matrix<double> x_ref(n, 1), b(n, 1);
  for (index_t i = 0; i < n; ++i) x_ref(i, 0) = rng.uniform(-1, 1);
  H.mult(1.0, la::ConstMatrixView<double>(x_ref.view()), 0.0, b.view());

  auto H_factored = hmat::HMatrix<double>::assemble(tree, tree, kernel, opt);
  H_factored.lu_factorize();
  la::Matrix<double> x = b;
  H_factored.solve(x.view());
  std::printf("\nH-LU solve relative error  : %.2e\n",
              la::rel_diff<double>(x.view(), x_ref.view()));

  // The symmetric H-LDL^T mode (the paper's HMAT path for symmetric
  // systems) gives the same answer.
  auto H_sym = hmat::HMatrix<double>::assemble(tree, tree, kernel, opt);
  H_sym.ldlt_factorize();
  la::Matrix<double> x2 = b;
  H_sym.solve(x2.view());
  std::printf("H-LDLT solve relative error: %.2e\n",
              la::rel_diff<double>(x2.view(), x_ref.view()));

  // Compressed AXPY: fold a dense rank-structured update into H.
  la::Matrix<double> update(n, 64);
  for (index_t j = 0; j < 64; ++j)
    for (index_t i = 0; i < n; ++i)
      update(i, j) = 0.01 / (1.0 + i + 2.0 * j);
  const auto before = H.stored_entries();
  H.add_dense_block(1.0, la::ConstMatrixView<double>(update.view()), 0, 0);
  std::printf("compressed AXPY of a %d x 64 dense panel: stored entries "
              "%lld -> %lld\n", n, static_cast<long long>(before),
              static_cast<long long>(H.stored_entries()));
  return 0;
}
