// Quickstart: assemble a small coupled FEM/BEM pipe system, solve it with
// the compressed-Schur multi-solve algorithm (the paper's most
// memory-scalable strategy) and check the result against the built-in
// manufactured solution.
//
//   $ ./quickstart [--n 6000] [--eps 1e-3]
#include <cstdio>

#include "common/cli.h"
#include "common/memory.h"
#include "coupled/coupled.h"

int main(int argc, char** argv) {
  using namespace cs;
  CliArgs args(argc, argv);
  args.describe("n", "total number of unknowns (default 6000)");
  args.describe("eps", "low-rank accuracy (default 1e-3)");
  args.check("Minimal end-to-end coupled FEM/BEM solve.");

  // 1. Build the coupled system: sparse FEM volume block, sparse coupling,
  //    dense BEM surface block (exposed lazily through a kernel generator).
  fembem::SystemParams params;
  params.total_unknowns = static_cast<index_t>(args.get_int("n", 6000));
  auto system = fembem::make_pipe_system<double>(params);
  std::printf("coupled system: %d FEM + %d BEM unknowns\n", system.nv(),
              system.ns());

  // 2. Configure the coupled strategy. Strategy::kMultiSolveCompressed is
  //    Algorithm 2 of the paper: blockwise sparse solves, H-matrix Schur
  //    complement with compressed AXPY accumulation.
  coupled::Config config;
  config.strategy = coupled::Strategy::kMultiSolveCompressed;
  config.eps = args.get_double("eps", 1e-3);
  config.n_c = 128;   // sparse-solve panel width
  config.n_S = 512;   // Schur accumulation panel width

  // 3. Solve and report.
  auto stats = coupled::solve_coupled(system, config);
  if (!stats.success) {
    std::printf("solve failed: %s\n", stats.failure.c_str());
    return 1;
  }
  std::printf("solved in %.2f s\n", stats.total_seconds);
  std::printf("  sparse factorization : %.2f s\n",
              stats.phases.get("sparse_factorization"));
  std::printf("  Schur assembly       : %.2f s\n", stats.phases.get("schur"));
  std::printf("  dense factorization  : %.2f s\n",
              stats.phases.get("dense_factorization"));
  std::printf("  solution             : %.2f s\n",
              stats.phases.get("solution"));
  std::printf("peak tracked memory    : %s\n",
              format_bytes(stats.peak_bytes).c_str());
  std::printf("Schur storage          : %s (compression ratio %.2f)\n",
              format_bytes(stats.schur_bytes).c_str(),
              stats.schur_compression_ratio);
  std::printf("relative error         : %.2e (eps = %.0e)\n",
              stats.relative_error, config.eps);
  return stats.relative_error < 10 * config.eps ? 0 : 1;
}
