
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scaling.cpp" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coupled/CMakeFiles/cs_coupled.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsedirect/CMakeFiles/cs_sparsedirect.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/cs_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/fembem/CMakeFiles/cs_fembem.dir/DependInfo.cmake"
  "/root/repo/build/src/hmat/CMakeFiles/cs_hmat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
