# Empty dependencies file for bench_ooc.
# This may be replaced when dependencies are built.
