file(REMOVE_RECURSE
  "CMakeFiles/bench_ooc.dir/bench_ooc.cpp.o"
  "CMakeFiles/bench_ooc.dir/bench_ooc.cpp.o.d"
  "bench_ooc"
  "bench_ooc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
