# Empty compiler generated dependencies file for cs_ordering.
# This may be replaced when dependencies are built.
