file(REMOVE_RECURSE
  "libcs_ordering.a"
)
