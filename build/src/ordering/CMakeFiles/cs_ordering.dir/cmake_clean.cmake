file(REMOVE_RECURSE
  "CMakeFiles/cs_ordering.dir/mindeg.cpp.o"
  "CMakeFiles/cs_ordering.dir/mindeg.cpp.o.d"
  "CMakeFiles/cs_ordering.dir/nested_dissection.cpp.o"
  "CMakeFiles/cs_ordering.dir/nested_dissection.cpp.o.d"
  "CMakeFiles/cs_ordering.dir/ordering.cpp.o"
  "CMakeFiles/cs_ordering.dir/ordering.cpp.o.d"
  "CMakeFiles/cs_ordering.dir/rcm.cpp.o"
  "CMakeFiles/cs_ordering.dir/rcm.cpp.o.d"
  "libcs_ordering.a"
  "libcs_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
