file(REMOVE_RECURSE
  "CMakeFiles/cs_sparsedirect.dir/etree.cpp.o"
  "CMakeFiles/cs_sparsedirect.dir/etree.cpp.o.d"
  "CMakeFiles/cs_sparsedirect.dir/symbolic.cpp.o"
  "CMakeFiles/cs_sparsedirect.dir/symbolic.cpp.o.d"
  "libcs_sparsedirect.a"
  "libcs_sparsedirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_sparsedirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
