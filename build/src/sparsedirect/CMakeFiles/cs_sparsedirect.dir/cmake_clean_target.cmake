file(REMOVE_RECURSE
  "libcs_sparsedirect.a"
)
