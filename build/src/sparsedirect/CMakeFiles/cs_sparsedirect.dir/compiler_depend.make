# Empty compiler generated dependencies file for cs_sparsedirect.
# This may be replaced when dependencies are built.
