file(REMOVE_RECURSE
  "CMakeFiles/cs_coupled.dir/coupled.cpp.o"
  "CMakeFiles/cs_coupled.dir/coupled.cpp.o.d"
  "libcs_coupled.a"
  "libcs_coupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_coupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
