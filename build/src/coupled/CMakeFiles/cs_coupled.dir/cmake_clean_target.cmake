file(REMOVE_RECURSE
  "libcs_coupled.a"
)
