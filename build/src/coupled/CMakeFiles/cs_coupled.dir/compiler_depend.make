# Empty compiler generated dependencies file for cs_coupled.
# This may be replaced when dependencies are built.
