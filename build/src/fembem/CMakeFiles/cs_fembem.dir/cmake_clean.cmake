file(REMOVE_RECURSE
  "CMakeFiles/cs_fembem.dir/mesh.cpp.o"
  "CMakeFiles/cs_fembem.dir/mesh.cpp.o.d"
  "libcs_fembem.a"
  "libcs_fembem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_fembem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
