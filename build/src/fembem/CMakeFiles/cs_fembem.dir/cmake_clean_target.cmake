file(REMOVE_RECURSE
  "libcs_fembem.a"
)
