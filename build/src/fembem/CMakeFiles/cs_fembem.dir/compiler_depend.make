# Empty compiler generated dependencies file for cs_fembem.
# This may be replaced when dependencies are built.
