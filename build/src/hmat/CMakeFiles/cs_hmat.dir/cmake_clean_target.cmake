file(REMOVE_RECURSE
  "libcs_hmat.a"
)
