# Empty compiler generated dependencies file for cs_hmat.
# This may be replaced when dependencies are built.
