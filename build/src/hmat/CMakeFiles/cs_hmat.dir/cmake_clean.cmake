file(REMOVE_RECURSE
  "CMakeFiles/cs_hmat.dir/cluster.cpp.o"
  "CMakeFiles/cs_hmat.dir/cluster.cpp.o.d"
  "libcs_hmat.a"
  "libcs_hmat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_hmat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
