# Empty compiler generated dependencies file for pipe_acoustics.
# This may be replaced when dependencies are built.
