file(REMOVE_RECURSE
  "CMakeFiles/pipe_acoustics.dir/pipe_acoustics.cpp.o"
  "CMakeFiles/pipe_acoustics.dir/pipe_acoustics.cpp.o.d"
  "pipe_acoustics"
  "pipe_acoustics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipe_acoustics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
