file(REMOVE_RECURSE
  "CMakeFiles/export_system.dir/export_system.cpp.o"
  "CMakeFiles/export_system.dir/export_system.cpp.o.d"
  "export_system"
  "export_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
