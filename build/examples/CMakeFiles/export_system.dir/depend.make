# Empty dependencies file for export_system.
# This may be replaced when dependencies are built.
