file(REMOVE_RECURSE
  "CMakeFiles/aircraft_noise.dir/aircraft_noise.cpp.o"
  "CMakeFiles/aircraft_noise.dir/aircraft_noise.cpp.o.d"
  "aircraft_noise"
  "aircraft_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aircraft_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
