# Empty dependencies file for aircraft_noise.
# This may be replaced when dependencies are built.
