file(REMOVE_RECURSE
  "CMakeFiles/hmatrix_tour.dir/hmatrix_tour.cpp.o"
  "CMakeFiles/hmatrix_tour.dir/hmatrix_tour.cpp.o.d"
  "hmatrix_tour"
  "hmatrix_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmatrix_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
