# Empty dependencies file for hmatrix_tour.
# This may be replaced when dependencies are built.
