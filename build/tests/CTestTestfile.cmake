# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/qr_svd_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/ordering_test[1]_include.cmake")
include("/root/repo/build/tests/sparsedirect_test[1]_include.cmake")
include("/root/repo/build/tests/hmat_test[1]_include.cmake")
include("/root/repo/build/tests/fembem_test[1]_include.cmake")
include("/root/repo/build/tests/coupled_test[1]_include.cmake")
include("/root/repo/build/tests/dense_test[1]_include.cmake")
include("/root/repo/build/tests/blr_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/hmat_ldlt_test[1]_include.cmake")
include("/root/repo/build/tests/ooc_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
