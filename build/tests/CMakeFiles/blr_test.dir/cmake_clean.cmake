file(REMOVE_RECURSE
  "CMakeFiles/blr_test.dir/blr_test.cpp.o"
  "CMakeFiles/blr_test.dir/blr_test.cpp.o.d"
  "blr_test"
  "blr_test.pdb"
  "blr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
