# Empty compiler generated dependencies file for blr_test.
# This may be replaced when dependencies are built.
