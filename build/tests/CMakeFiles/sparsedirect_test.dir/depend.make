# Empty dependencies file for sparsedirect_test.
# This may be replaced when dependencies are built.
