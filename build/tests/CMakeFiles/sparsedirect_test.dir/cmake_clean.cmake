file(REMOVE_RECURSE
  "CMakeFiles/sparsedirect_test.dir/sparsedirect_test.cpp.o"
  "CMakeFiles/sparsedirect_test.dir/sparsedirect_test.cpp.o.d"
  "sparsedirect_test"
  "sparsedirect_test.pdb"
  "sparsedirect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsedirect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
