# Empty compiler generated dependencies file for hmat_ldlt_test.
# This may be replaced when dependencies are built.
