file(REMOVE_RECURSE
  "CMakeFiles/hmat_ldlt_test.dir/hmat_ldlt_test.cpp.o"
  "CMakeFiles/hmat_ldlt_test.dir/hmat_ldlt_test.cpp.o.d"
  "hmat_ldlt_test"
  "hmat_ldlt_test.pdb"
  "hmat_ldlt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmat_ldlt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
