file(REMOVE_RECURSE
  "CMakeFiles/fembem_test.dir/fembem_test.cpp.o"
  "CMakeFiles/fembem_test.dir/fembem_test.cpp.o.d"
  "fembem_test"
  "fembem_test.pdb"
  "fembem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fembem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
