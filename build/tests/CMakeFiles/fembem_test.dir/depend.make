# Empty dependencies file for fembem_test.
# This may be replaced when dependencies are built.
