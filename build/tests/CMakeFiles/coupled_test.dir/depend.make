# Empty dependencies file for coupled_test.
# This may be replaced when dependencies are built.
