file(REMOVE_RECURSE
  "CMakeFiles/hmat_test.dir/hmat_test.cpp.o"
  "CMakeFiles/hmat_test.dir/hmat_test.cpp.o.d"
  "hmat_test"
  "hmat_test.pdb"
  "hmat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
