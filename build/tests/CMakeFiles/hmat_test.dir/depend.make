# Empty dependencies file for hmat_test.
# This may be replaced when dependencies are built.
