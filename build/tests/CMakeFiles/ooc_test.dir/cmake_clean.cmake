file(REMOVE_RECURSE
  "CMakeFiles/ooc_test.dir/ooc_test.cpp.o"
  "CMakeFiles/ooc_test.dir/ooc_test.cpp.o.d"
  "ooc_test"
  "ooc_test.pdb"
  "ooc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
