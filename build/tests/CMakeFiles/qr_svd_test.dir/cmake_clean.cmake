file(REMOVE_RECURSE
  "CMakeFiles/qr_svd_test.dir/qr_svd_test.cpp.o"
  "CMakeFiles/qr_svd_test.dir/qr_svd_test.cpp.o.d"
  "qr_svd_test"
  "qr_svd_test.pdb"
  "qr_svd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
